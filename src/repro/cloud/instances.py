"""Instance lifecycle state machines.

The Resource Manager spawns two kinds of workers (Section 5, "Managing
compute instances"):

- **VMs**, identified by an ``INSTANCE ID`` (``i-...``).  They spend the
  provider's cold-boot latency in ``BOOTING`` before becoming ``RUNNING``
  executors, and are billed per second from spawn until termination
  (boot time is charged -- the instance is deployed).
- **Serverless instances** (SLs), identified by a ``REQUEST ID``
  (``req-...``).  They become available almost immediately and are billed
  per GB-second of busy execution only (pure pay-as-you-go).

``DRAINING`` supports the relay-instances mechanism (Section 4.3): a
draining SL accepts no new tasks and is terminated once its running task
finishes.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools

from repro.cloud.pricing import CostBreakdown, PriceBook

__all__ = [
    "InstanceKind",
    "InstanceState",
    "Instance",
    "VMInstance",
    "ServerlessInstance",
]


class InstanceKind(enum.Enum):
    """The two compute resource kinds the paper exploits together."""

    VM = "vm"
    SERVERLESS = "serverless"


class InstanceState(enum.Enum):
    """Lifecycle states of a worker instance."""

    PENDING = "pending"        # spawn requested, not yet started
    BOOTING = "booting"        # cold boot in progress (billed for VMs)
    RUNNING = "running"        # available for task execution
    DRAINING = "draining"      # relay: no new tasks, finish current ones
    TERMINATED = "terminated"  # released; no further billing

_ALLOWED_TRANSITIONS = {
    InstanceState.PENDING: {InstanceState.BOOTING, InstanceState.TERMINATED},
    InstanceState.BOOTING: {InstanceState.RUNNING, InstanceState.TERMINATED},
    InstanceState.RUNNING: {InstanceState.DRAINING, InstanceState.TERMINATED},
    InstanceState.DRAINING: {InstanceState.TERMINATED},
    InstanceState.TERMINATED: set(),
}

_vm_counter = itertools.count(1)
_sl_counter = itertools.count(1)


@dataclasses.dataclass
class Instance:
    """Common state shared by both worker kinds.

    Billing bookkeeping is intentionally explicit: the engine calls
    :meth:`mark_busy` around task execution and the instance accumulates
    ``busy_seconds``; VMs additionally record their deployed interval.
    """

    instance_id: str
    kind: InstanceKind
    vcpus: int
    memory_gb: float
    spawn_time: float
    state: InstanceState = InstanceState.PENDING
    ready_time: float | None = None
    terminate_time: float | None = None
    busy_seconds: float = 0.0
    tasks_executed: int = 0
    invocations: int = 0

    def transition(self, new_state: InstanceState, now: float) -> None:
        """Move to ``new_state``, enforcing the lifecycle diagram."""
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal transition {self.state.value} -> {new_state.value} "
                f"for {self.instance_id}"
            )
        self.state = new_state
        if new_state is InstanceState.RUNNING:
            self.ready_time = now
        elif new_state is InstanceState.TERMINATED:
            self.terminate_time = now

    def mark_busy(self, duration: float) -> None:
        """Record ``duration`` seconds of task execution on this worker."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.busy_seconds += duration
        self.tasks_executed += 1

    @property
    def is_available(self) -> bool:
        """Whether the scheduler may place new tasks here."""
        return self.state is InstanceState.RUNNING

    @property
    def is_alive(self) -> bool:
        return self.state not in (InstanceState.TERMINATED,)

    def deployed_seconds(self, now: float) -> float:
        """Wall-clock seconds this instance has existed (spawn to end)."""
        end = self.terminate_time if self.terminate_time is not None else now
        return max(end - self.spawn_time, 0.0)

    def cost(self, prices: PriceBook, now: float) -> CostBreakdown:
        raise NotImplementedError


@dataclasses.dataclass
class VMInstance(Instance):
    """A worker VM, billed per deployed second plus storage and burst."""

    def cost(self, prices: PriceBook, now: float) -> CostBreakdown:
        return prices.vm_breakdown(self.deployed_seconds(now))

    @classmethod
    def create(
        cls, spawn_time: float, vcpus: int = 2, memory_gb: float = 2.0
    ) -> "VMInstance":
        return cls(
            instance_id=f"i-{next(_vm_counter):08d}",
            kind=InstanceKind.VM,
            vcpus=vcpus,
            memory_gb=memory_gb,
            spawn_time=spawn_time,
        )


@dataclasses.dataclass
class ServerlessInstance(Instance):
    """A serverless worker: one long-running function invocation.

    A serverless Spark executor is a single invocation that stays up from
    spawn until termination, so it is billed per GB-second of *deployed*
    wall-clock time -- which is exactly why idle SLs inflate cost under
    SplitServe's static segueing timeout (Section 4.3) and why Smartpick's
    relay mechanism, which terminates the SL the moment its VM partner is
    ready, saves money.
    """

    relayed_vm_id: str | None = None

    def cost(self, prices: PriceBook, now: float) -> CostBreakdown:
        return prices.sl_breakdown(self.deployed_seconds(now), self.invocations)

    @classmethod
    def create(
        cls, spawn_time: float, vcpus: int = 2, memory_gb: float = 2.0
    ) -> "ServerlessInstance":
        instance = cls(
            instance_id=f"req-{next(_sl_counter):08d}",
            kind=InstanceKind.SERVERLESS,
            vcpus=vcpus,
            memory_gb=memory_gb,
            spawn_time=spawn_time,
        )
        instance.invocations = 1
        return instance
