"""The Resource Manager (RM).

Mirrors the paper's RM component (Sections 4.1 and 5): it spawns the
determined numbers of VMs and SLs on the chosen provider, tracks their
charging status, maintains the ``REQUEST ID`` (SL) to ``INSTANCE ID`` (VM)
mapping that drives the relay-instances mechanism, and produces the
per-query cost report.

The RM is deliberately engine-agnostic: the discrete-event engine asks it
*when* instances become ready and tells it *when* time passes; the RM owns
instance state and billing.
"""

from __future__ import annotations

from repro.cloud.instances import (
    Instance,
    InstanceKind,
    InstanceState,
    ServerlessInstance,
    VMInstance,
)
from repro.cloud.pricing import CostBreakdown, PriceBook
from repro.cloud.providers import ProviderProfile

__all__ = ["ResourceManager"]


class ResourceManager:
    """Spawns, tracks, relays and bills worker instances for one query.

    Parameters
    ----------
    provider:
        Performance profile of the target cloud (boot latencies).
    prices:
        The provider's price book, used for the final cost report.
    relay_enabled:
        When ``True`` (``smartpick.cloud.compute.relay``), every SL spawned
        alongside a VM is paired to it; the pairing is consumed when the VM
        becomes ready and the SL is drained.
    """

    def __init__(
        self,
        provider: ProviderProfile,
        prices: PriceBook,
        relay_enabled: bool = True,
    ) -> None:
        self.provider = provider
        self.prices = prices
        self.relay_enabled = relay_enabled
        self.instances: list[Instance] = []
        # VM INSTANCE ID -> SL REQUEST ID, per Section 5's relay bookkeeping.
        self._relay_by_vm: dict[str, str] = {}
        self._by_id: dict[str, Instance] = {}

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def spawn_vms(self, count: int, now: float) -> list[VMInstance]:
        """Request ``count`` VMs; they become ready after the cold boot."""
        if count < 0:
            raise ValueError("count must be non-negative")
        vms = []
        for _ in range(count):
            vm = VMInstance.create(spawn_time=now)
            vm.transition(InstanceState.BOOTING, now)
            self._register(vm)
            vms.append(vm)
        return vms

    def spawn_sls(self, count: int, now: float) -> list[ServerlessInstance]:
        """Invoke ``count`` serverless instances (near-instant boot)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        sls = []
        for _ in range(count):
            sl = ServerlessInstance.create(spawn_time=now)
            sl.transition(InstanceState.BOOTING, now)
            self._register(sl)
            sls.append(sl)
        return sls

    def _register(self, instance: Instance) -> None:
        self.instances.append(instance)
        self._by_id[instance.instance_id] = instance

    def boot_duration(self, instance: Instance) -> float:
        """Cold-boot latency for ``instance`` on this provider."""
        if instance.kind is InstanceKind.VM:
            return self.provider.vm_boot_seconds
        return self.provider.sl_boot_seconds

    def mark_ready(self, instance: Instance, now: float) -> None:
        """Boot finished; the instance may now run tasks."""
        instance.transition(InstanceState.RUNNING, now)

    # ------------------------------------------------------------------
    # Relay-instances bookkeeping (Section 4.3)
    # ------------------------------------------------------------------

    def pair_for_relay(self, sl: ServerlessInstance, vm: VMInstance) -> None:
        """Pair ``sl`` to ``vm``: the SL retires when the VM is ready."""
        if not self.relay_enabled:
            raise RuntimeError("relay is disabled on this resource manager")
        if vm.instance_id in self._relay_by_vm:
            raise ValueError(f"{vm.instance_id} already has a relay partner")
        self._relay_by_vm[vm.instance_id] = sl.instance_id
        sl.relayed_vm_id = vm.instance_id

    def relay_partner(self, vm: VMInstance) -> ServerlessInstance | None:
        """The SL paired to ``vm``, if any (consumes the mapping)."""
        sl_id = self._relay_by_vm.pop(vm.instance_id, None)
        if sl_id is None:
            return None
        partner = self._by_id[sl_id]
        assert isinstance(partner, ServerlessInstance)
        return partner

    def drain(self, instance: Instance, now: float) -> None:
        """Stop assigning tasks; the engine terminates it once idle."""
        if instance.state is InstanceState.RUNNING:
            instance.transition(InstanceState.DRAINING, now)

    def terminate(self, instance: Instance, now: float) -> None:
        """Release an instance (idempotent)."""
        if instance.state is not InstanceState.TERMINATED:
            instance.transition(InstanceState.TERMINATED, now)

    def terminate_all(self, now: float) -> None:
        """Release everything still alive (query completed)."""
        for instance in self.instances:
            self.terminate(instance, now)

    # ------------------------------------------------------------------
    # Introspection and billing
    # ------------------------------------------------------------------

    @property
    def vms(self) -> list[VMInstance]:
        return [i for i in self.instances if isinstance(i, VMInstance)]

    @property
    def sls(self) -> list[ServerlessInstance]:
        return [i for i in self.instances if isinstance(i, ServerlessInstance)]

    def alive_instances(self) -> list[Instance]:
        return [i for i in self.instances if i.is_alive]

    def available_instances(self) -> list[Instance]:
        return [i for i in self.instances if i.is_available]

    def used_serverless(self) -> bool:
        """Whether any SL executed work (drives the external-store charge)."""
        return any(sl.tasks_executed > 0 for sl in self.sls)

    def cost_report(self, query_duration: float, now: float) -> CostBreakdown:
        """Itemised query cost (Section 5, "Cost estimation").

        VM instances bill per deployed second; SLs per busy GB-second; and
        the external Redis host bills for the full query duration if at
        least one SL instance served the query.
        """
        report = CostBreakdown()
        for instance in self.instances:
            report = report + instance.cost(self.prices, now)
        if self.used_serverless():
            report.external_store += self.prices.redis_charge(query_duration)
        return report
