"""The price book: what the simulated clouds charge.

All rates come from the public price pages the paper cites (Section 2.2 and
Section 5, "Cost estimation"), for the exact instance types of the
evaluation (Section 6.1):

- Workers are AWS ``t3.small`` / GCP ``e2-small`` (2 vCPU, 2 GB) and
  2 GB serverless functions (also 2 vCPU per invocation).
- VM time is billed per second while the instance is deployed
  (boot time included), *plus* 8 GB of block storage per VM, *plus* the
  burstable surcharge of $0.05 per vCPU-hour on AWS (free on GCP).
- Serverless time is billed per GB-second only while code executes
  (pure pay-as-you-go), plus a per-invocation fee.
- Whenever at least one serverless instance participates in a query, the
  external Redis store (a ``t3.xlarge`` / ``e2-standard-4`` host) is billed
  for the query duration.

With these rates an AWS serverless second costs ~5.8x a base VM second,
matching Table 1's "up to 5.8X" unit-cost comparison.
"""

from __future__ import annotations

import dataclasses
import functools

__all__ = ["PriceBook", "CostBreakdown", "AWS_PRICES", "GCP_PRICES", "get_prices"]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_MONTH = 30.0 * 24.0 * 3600.0


@dataclasses.dataclass(frozen=True)
class PriceBook:
    """Billing rates for one provider.

    Attributes
    ----------
    provider:
        Provider key this book belongs to.
    vm_hourly:
        On-demand price of one worker VM (t3.small / e2-small).
    burstable_per_vcpu_hour:
        Surcharge while a burstable VM runs above its CPU baseline.
        Zero on GCP (e2 bursting is free, Section 6.1).
    burst_utilisation:
        Fraction of CPU time billed at the burst rate.  Analytics tasks pin
        the CPU, so a t3.small (20 % baseline per vCPU) is charged for the
        ~80 % above baseline.
    vm_vcpus:
        vCPUs per worker VM (2 for both evaluation clouds).
    vm_storage_gb / storage_gb_month:
        Block storage attached to each VM (8 GB gp2) and its monthly rate.
    sl_gb_second:
        Serverless compute price per GB-second.
    sl_memory_gb:
        Memory size of one serverless instance (2 GB in the evaluation).
    sl_invocation:
        Flat fee per serverless invocation.
    redis_host_hourly:
        External store host (t3.xlarge / e2-standard-4), billed while any
        serverless instance serves the query.
    """

    provider: str
    vm_hourly: float
    burstable_per_vcpu_hour: float
    burst_utilisation: float
    vm_vcpus: int
    vm_storage_gb: float
    storage_gb_month: float
    sl_gb_second: float
    sl_memory_gb: float
    sl_invocation: float
    redis_host_hourly: float

    # ------------------------------------------------------------------
    # Per-second rates
    # ------------------------------------------------------------------
    # Cached: billing runs on the replay hot path (every hand-over,
    # release and keep-alive interval derives a rate), and the books are
    # frozen, so each rate is computed once per instance.  The cache
    # lives in the instance ``__dict__``, which frozen dataclasses keep.

    @functools.cached_property
    def vm_per_second(self) -> float:
        """Base VM price per second (excluding burst and storage)."""
        return self.vm_hourly / _SECONDS_PER_HOUR

    @functools.cached_property
    def vm_burst_per_second(self) -> float:
        """Burstable surcharge per VM-second."""
        return (
            self.burstable_per_vcpu_hour
            * self.burst_utilisation
            * self.vm_vcpus
            / _SECONDS_PER_HOUR
        )

    @functools.cached_property
    def vm_storage_per_second(self) -> float:
        """Block-storage price per VM-second."""
        return self.vm_storage_gb * self.storage_gb_month / _SECONDS_PER_MONTH

    @functools.cached_property
    def sl_per_second(self) -> float:
        """Serverless price per busy second of one instance."""
        return self.sl_gb_second * self.sl_memory_gb

    @functools.cached_property
    def redis_per_second(self) -> float:
        """External store price per second."""
        return self.redis_host_hourly / _SECONDS_PER_HOUR

    @property
    def sl_to_vm_unit_cost_ratio(self) -> float:
        """How much pricier one SL second is than one base VM second.

        Table 1 reports "up to 5.8X" for the evaluation's instance pair.
        """
        return self.sl_per_second / self.vm_per_second

    # ------------------------------------------------------------------
    # Aggregate charges
    # ------------------------------------------------------------------

    def vm_charge(self, deployed_seconds: float) -> float:
        """Total charge for one VM deployed for ``deployed_seconds``."""
        return self.vm_breakdown(deployed_seconds).total

    def sl_charge(self, busy_seconds: float, invocations: int = 1) -> float:
        """Total charge for one SL instance busy for ``busy_seconds``."""
        return self.sl_breakdown(busy_seconds, invocations).total

    def vm_breakdown(self, deployed_seconds: float) -> "CostBreakdown":
        """Itemised charge for one VM deployed for ``deployed_seconds``.

        The single source of the VM rate model: per-query bills, pool
        keep-alive accounting and instance-level cost reports all route
        through here.
        """
        if deployed_seconds < 0:
            raise ValueError("deployed_seconds must be non-negative")
        return CostBreakdown(
            vm_compute=deployed_seconds * self.vm_per_second,
            vm_burst=deployed_seconds * self.vm_burst_per_second,
            vm_storage=deployed_seconds * self.vm_storage_per_second,
        )

    def sl_breakdown(
        self, busy_seconds: float, invocations: int = 1
    ) -> "CostBreakdown":
        """Itemised charge for one SL busy for ``busy_seconds``."""
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        if invocations < 0:
            raise ValueError("invocations must be non-negative")
        return CostBreakdown(
            sl_compute=busy_seconds * self.sl_per_second,
            sl_invocations=invocations * self.sl_invocation,
        )

    def redis_charge(self, duration_seconds: float) -> float:
        """External-store charge for a query of ``duration_seconds``."""
        if duration_seconds < 0:
            raise ValueError("duration_seconds must be non-negative")
        return duration_seconds * self.redis_per_second


@dataclasses.dataclass(slots=True)
class CostBreakdown:
    """Itemised cost of one query execution (Section 5, Cost estimation)."""

    vm_compute: float = 0.0
    vm_burst: float = 0.0
    vm_storage: float = 0.0
    sl_compute: float = 0.0
    sl_invocations: float = 0.0
    external_store: float = 0.0

    @property
    def vm_total(self) -> float:
        return self.vm_compute + self.vm_burst + self.vm_storage

    @property
    def sl_total(self) -> float:
        return self.sl_compute + self.sl_invocations + self.external_store

    @property
    def total(self) -> float:
        return self.vm_total + self.sl_total

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            vm_compute=self.vm_compute + other.vm_compute,
            vm_burst=self.vm_burst + other.vm_burst,
            vm_storage=self.vm_storage + other.vm_storage,
            sl_compute=self.sl_compute + other.sl_compute,
            sl_invocations=self.sl_invocations + other.sl_invocations,
            external_store=self.external_store + other.external_store,
        )

    def accrue(self, other: "CostBreakdown") -> None:
        """Fold ``other`` in, mutating this breakdown (running ledgers).

        Same arithmetic as ``self + other`` without allocating a new
        object per accrual -- the pool's keep-alive and wasted-cost
        ledgers fold in one interval per instance release at scale.
        """
        self.vm_compute += other.vm_compute
        self.vm_burst += other.vm_burst
        self.vm_storage += other.vm_storage
        self.sl_compute += other.sl_compute
        self.sl_invocations += other.sl_invocations
        self.external_store += other.external_store

    def as_dict(self) -> dict[str, float]:
        return {
            "vm_compute": self.vm_compute,
            "vm_burst": self.vm_burst,
            "vm_storage": self.vm_storage,
            "sl_compute": self.sl_compute,
            "sl_invocations": self.sl_invocations,
            "external_store": self.external_store,
            "total": self.total,
        }


AWS_PRICES = PriceBook(
    provider="aws",
    vm_hourly=0.0208,            # t3.small, us-east-1
    burstable_per_vcpu_hour=0.05,
    burst_utilisation=0.8,       # pinned CPU minus the 20 % t3 baseline
    vm_vcpus=2,
    vm_storage_gb=8.0,           # gp2 root volume per worker
    storage_gb_month=0.10,
    sl_gb_second=1.66667e-5,     # Lambda
    sl_memory_gb=2.0,
    sl_invocation=2.0e-7,        # $0.20 per million requests
    redis_host_hourly=0.1664,    # t3.xlarge
)

GCP_PRICES = PriceBook(
    provider="gcp",
    vm_hourly=0.016751,          # e2-small, us-east1
    burstable_per_vcpu_hour=0.0,  # e2 bursting is free of charge
    burst_utilisation=0.8,
    vm_vcpus=2,
    vm_storage_gb=8.0,           # pd-balanced root volume
    storage_gb_month=0.10,
    sl_gb_second=1.45e-5,        # Cloud Functions 2 GB tier (memory + GHz)
    sl_memory_gb=2.0,
    sl_invocation=4.0e-7,        # $0.40 per million invocations
    redis_host_hourly=0.134012,  # e2-standard-4
)

_PRICES = {book.provider: book for book in (AWS_PRICES, GCP_PRICES)}


def get_prices(provider: str) -> PriceBook:
    """Look a price book up by provider name (case-insensitive)."""
    try:
        return _PRICES[provider.lower()]
    except KeyError:
        raise ValueError(
            f"unknown provider {provider!r}; choose from {sorted(_PRICES)}"
        ) from None
