"""Instance families: the Section 7 memory-locality extension.

"To improve memory locality, we also consider using larger (expensive) VM
instance types (and families).  We could observe that applications can
improve performance with additional cost by using larger VM instance
family, e.g., AWS c3, which opens another richer tradeoff space."
(Section 7 -- result omitted from the paper for space.)

``smartpick.cloud.compute.instanceFamily`` selects the family; applying
one rewrites the provider profile (faster cores, better memory locality
via higher shuffle/IO throughput) and the price book (higher hourly rate,
no burst surcharge on the fixed-performance families).
"""

from __future__ import annotations

import dataclasses

from repro.cloud.pricing import PriceBook
from repro.cloud.providers import ProviderProfile

__all__ = ["InstanceFamily", "FAMILIES", "get_family", "apply_family"]


@dataclasses.dataclass(frozen=True)
class InstanceFamily:
    """One worker instance family option.

    Attributes
    ----------
    name:
        Family key as used in the Smartpick property (``t3``/``m5``/``c5``).
    compute_speedup:
        CPU speed multiplier relative to the t3 baseline worker.
    locality_speedup:
        Multiplier on IO/memory throughput -- the memory-locality gain of
        bigger instances (more RAM keeps shuffle blocks resident).
    memory_gb:
        Worker memory.
    vm_hourly_aws / vm_hourly_gcp:
        On-demand price of the comparable instance on each provider.
    burstable:
        Whether the family bills a burst surcharge (t3 only).
    """

    name: str
    compute_speedup: float
    locality_speedup: float
    memory_gb: float
    vm_hourly_aws: float
    vm_hourly_gcp: float
    burstable: bool

    def __post_init__(self) -> None:
        if self.compute_speedup <= 0 or self.locality_speedup <= 0:
            raise ValueError("speedups must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")


FAMILIES: dict[str, InstanceFamily] = {
    # The evaluation's default: burstable 2 vCPU / 2 GB workers.
    "t3": InstanceFamily(
        name="t3", compute_speedup=1.0, locality_speedup=1.0,
        memory_gb=2.0, vm_hourly_aws=0.0208, vm_hourly_gcp=0.016751,
        burstable=True,
    ),
    # General-purpose fixed-performance: m5.large / e2-standard-2.
    "m5": InstanceFamily(
        name="m5", compute_speedup=1.18, locality_speedup=1.6,
        memory_gb=8.0, vm_hourly_aws=0.096, vm_hourly_gcp=0.067006,
        burstable=False,
    ),
    # Compute-optimised: c5.large / c2-standard-2 analogue (the paper's
    # "e.g., AWS c3" suggestion, in its current generation).
    "c5": InstanceFamily(
        name="c5", compute_speedup=1.38, locality_speedup=1.3,
        memory_gb=4.0, vm_hourly_aws=0.085, vm_hourly_gcp=0.0836,
        burstable=False,
    ),
}


def get_family(name: str) -> InstanceFamily:
    """Look an instance family up by name (case-insensitive)."""
    try:
        return FAMILIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown instance family {name!r}; choose from {sorted(FAMILIES)}"
        ) from None


def apply_family(
    profile: ProviderProfile,
    prices: PriceBook,
    family: InstanceFamily | str,
) -> tuple[ProviderProfile, PriceBook]:
    """Rewrite a (profile, price book) pair for an instance family.

    The t3 family returns the inputs unchanged.  Other families scale VM
    CPU speed and IO/memory throughput, raise the hourly price, drop the
    burst surcharge, and grow worker memory.
    """
    if isinstance(family, str):
        family = get_family(family)
    if family.name == "t3":
        return profile, prices

    new_profile = dataclasses.replace(
        profile,
        vm_cpu_events_per_s=profile.vm_cpu_events_per_s
        * family.compute_speedup,
        vm_io_writes_per_s=profile.vm_io_writes_per_s
        * family.locality_speedup,
        vm_io_reads_per_s=profile.vm_io_reads_per_s * family.locality_speedup,
        memory_kops_per_s=profile.memory_kops_per_s * family.locality_speedup,
    )
    hourly = (
        family.vm_hourly_aws if prices.provider == "aws"
        else family.vm_hourly_gcp
    )
    new_prices = dataclasses.replace(
        prices,
        vm_hourly=hourly,
        burstable_per_vcpu_hour=(
            prices.burstable_per_vcpu_hour if family.burstable else 0.0
        ),
    )
    return new_profile, new_prices
