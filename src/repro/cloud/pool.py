"""The shared-cluster pool: warm instances across query lifetimes.

The paper's evaluation gives every query a throwaway set of workers, but a
deployed Smartpick faces Section 2.1's stream of ad-hoc arrivals -- and
there, warm serverless/VM instances are the single biggest latency and
cost lever.  :class:`ClusterPool` owns VM and SL instances *across* query
lifetimes:

- A query **acquires** workers through a :class:`PoolLease`; warm
  instances are handed over after a short warm-boot delay, the remainder
  are spawned cold at the provider's full boot latency.
- When capacity (``max_vms`` / ``max_sls``) is exhausted the request
  queues FIFO and is granted as earlier leases release workers -- the
  queueing delay is recorded on the lease.
- **Released** instances stay warm for a keep-alive window decided by a
  pluggable :class:`AutoscalerPolicy`; a reuse within the window cancels
  the expiry timer (via :meth:`Simulator.cancel`), otherwise the instance
  is terminated and its idle time is billed as keep-alive cost.
- Billing is per-lease: each instance's leased interval is charged to the
  query that held it, while idle warm time accrues to the pool's
  keep-alive cost -- so shared-cluster bills stay itemised per query.
"""

from __future__ import annotations

import abc
import collections
import dataclasses
import itertools
from typing import TYPE_CHECKING, Callable

from repro.cloud.instances import (
    Instance,
    InstanceKind,
    InstanceState,
    ServerlessInstance,
    VMInstance,
)
from repro.cloud.pricing import CostBreakdown, PriceBook
from repro.cloud.providers import ProviderProfile

if TYPE_CHECKING:  # avoid a runtime cloud <-> engine import cycle
    from repro.engine.simulator import EventHandle, Simulator

#: How long grant timestamps are retained for rate estimation; windows
#: larger than this are silently truncated to it.
_GRANT_HISTORY_RETENTION_S = 3600.0

__all__ = [
    "AutoscalerPolicy",
    "ClusterPool",
    "DemandAutoscaler",
    "FixedKeepAlive",
    "NoKeepAlive",
    "PoolConfig",
    "PoolLease",
    "PoolStats",
]


@dataclasses.dataclass(frozen=True)
class PoolConfig:
    """Sizing and warm-start parameters of one shared cluster.

    Attributes
    ----------
    max_vms / max_sls:
        Hard capacity of the pool; acquire requests beyond it are clamped,
        and requests that cannot be granted from free capacity queue FIFO.
    vm_keep_alive_s / sl_keep_alive_s:
        Keep-alive window applied by the default (fixed) autoscaler when a
        worker is released.  ``0`` means terminate immediately (cold pool).
    warm_vm_boot_s / warm_sl_boot_s:
        Hand-over latency of a warm instance -- the executor re-attach
        cost, orders of magnitude below the provider's cold boot.
    """

    max_vms: int = 64
    max_sls: int = 256
    vm_keep_alive_s: float = 0.0
    sl_keep_alive_s: float = 0.0
    warm_vm_boot_s: float = 2.0
    warm_sl_boot_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_vms < 0 or self.max_sls < 0:
            raise ValueError("pool capacities must be non-negative")
        if self.max_vms + self.max_sls == 0:
            raise ValueError("the pool must have capacity for some worker")
        for name in ("vm_keep_alive_s", "sl_keep_alive_s",
                     "warm_vm_boot_s", "warm_sl_boot_s"):
            value = getattr(self, name)
            if not value >= 0.0 or value == float("inf"):
                raise ValueError(f"{name} must be finite and non-negative")


class AutoscalerPolicy(abc.ABC):
    """Decides how long a released worker stays warm."""

    @abc.abstractmethod
    def keep_alive(self, kind: InstanceKind, pool: "ClusterPool") -> float:
        """Keep-alive seconds for a worker of ``kind`` released now."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable policy name for reports."""


class FixedKeepAlive(AutoscalerPolicy):
    """Static keep-alive windows per worker kind (the config default)."""

    def __init__(self, vm_keep_alive_s: float, sl_keep_alive_s: float) -> None:
        if vm_keep_alive_s < 0 or sl_keep_alive_s < 0:
            raise ValueError("keep-alive windows must be non-negative")
        self.vm_keep_alive_s = vm_keep_alive_s
        self.sl_keep_alive_s = sl_keep_alive_s

    def keep_alive(self, kind: InstanceKind, pool: "ClusterPool") -> float:
        if kind is InstanceKind.VM:
            return self.vm_keep_alive_s
        return self.sl_keep_alive_s

    def describe(self) -> str:
        return (
            f"fixed-keep-alive(vm={self.vm_keep_alive_s:g}s, "
            f"sl={self.sl_keep_alive_s:g}s)"
        )


class NoKeepAlive(FixedKeepAlive):
    """Cold pool: every release terminates immediately."""

    def __init__(self) -> None:
        super().__init__(0.0, 0.0)

    def describe(self) -> str:
        return "no-keep-alive"


class DemandAutoscaler(AutoscalerPolicy):
    """Keep-alive sized to the observed acquisition rate.

    Estimates the lease arrival rate over a sliding ``window_s`` and keeps
    released workers warm for ``headroom`` expected inter-arrival gaps
    (capped at ``max_keep_alive_s``).  Under a burst the expected gap is
    short, so instances are confidently retained for the next arrival;
    when traffic dries up the expected gap -- and the cap -- bound the
    idle spend.
    """

    def __init__(
        self,
        window_s: float = 600.0,
        headroom: float = 3.0,
        max_keep_alive_s: float = 300.0,
    ) -> None:
        if window_s <= 0 or headroom <= 0 or max_keep_alive_s < 0:
            raise ValueError("autoscaler parameters must be positive")
        if window_s > _GRANT_HISTORY_RETENTION_S:
            raise ValueError(
                f"window_s must not exceed the grant-history retention "
                f"({_GRANT_HISTORY_RETENTION_S:g}s)"
            )
        self.window_s = window_s
        self.headroom = headroom
        self.max_keep_alive_s = max_keep_alive_s

    def keep_alive(self, kind: InstanceKind, pool: "ClusterPool") -> float:
        rate = pool.recent_acquire_rate(self.window_s)
        if rate <= 0.0:
            return 0.0
        return min(self.max_keep_alive_s, self.headroom / rate)

    def describe(self) -> str:
        return (
            f"demand-autoscaler(window={self.window_s:g}s, "
            f"headroom={self.headroom:g}, max={self.max_keep_alive_s:g}s)"
        )


@dataclasses.dataclass
class PoolStats:
    """Aggregate pool behaviour over one simulation."""

    cold_starts: int = 0
    warm_starts: int = 0
    expirations: int = 0
    leases_granted: int = 0
    leases_queued: int = 0
    peak_leased_vms: int = 0
    peak_leased_sls: int = 0

    @property
    def acquisitions(self) -> int:
        return self.cold_starts + self.warm_starts

    @property
    def warm_start_rate(self) -> float:
        """Fraction of worker acquisitions served from the warm set."""
        if self.acquisitions == 0:
            return 0.0
        return self.warm_starts / self.acquisitions


@dataclasses.dataclass(frozen=True)
class BillingSegment:
    """One instance's leased interval, attributed to one query."""

    kind: InstanceKind
    start: float
    end: float
    cold: bool
    tasks_executed: int

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class _OpenSegment:
    instance: Instance
    start: float
    cold: bool
    tasks_at_open: int
    boot_handle: EventHandle | None = None


class PoolLease:
    """One query's tenancy in the pool.

    Created by :meth:`ClusterPool.acquire`; the pool fills in instances at
    grant time (which may be later than the request under saturation) and
    closes billing segments as workers are released.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        n_vm: int,
        n_sl: int,
        requested_at: float,
        on_instance_ready: Callable[[Instance, bool], None],
        on_granted: Callable[["PoolLease"], None] | None = None,
        requested_vm: int | None = None,
        requested_sl: int | None = None,
    ) -> None:
        self.lease_id = f"lease-{next(self._ids):06d}"
        self.n_vm = n_vm
        self.n_sl = n_sl
        self.requested_vm = n_vm if requested_vm is None else requested_vm
        self.requested_sl = n_sl if requested_sl is None else requested_sl
        self.requested_at = requested_at
        self.granted_at: float | None = None
        self.on_instance_ready = on_instance_ready
        self.on_granted = on_granted
        self.vms: list[VMInstance] = []
        self.sls: list[ServerlessInstance] = []
        self._open: dict[str, _OpenSegment] = {}
        self.segments: list[BillingSegment] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_granted(self) -> bool:
        return self.granted_at is not None

    @property
    def was_clamped(self) -> bool:
        """Whether the pool granted fewer workers than were requested.

        A clamped query executed a *different* configuration from the one
        the caller (e.g. the predictor) asked for -- consumers comparing
        predictions to outcomes should check this flag.
        """
        return (self.n_vm, self.n_sl) != (self.requested_vm, self.requested_sl)

    @property
    def queueing_delay_s(self) -> float:
        """Seconds the request waited for pool capacity (0 when instant)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.requested_at

    @property
    def active_instances(self) -> list[Instance]:
        return [segment.instance for segment in self._open.values()]

    def is_active(self, instance: Instance) -> bool:
        return instance.instance_id in self._open

    @property
    def warm_acquisitions(self) -> int:
        warm_open = sum(1 for s in self._open.values() if not s.cold)
        return warm_open + sum(1 for s in self.segments if not s.cold)

    @property
    def cold_acquisitions(self) -> int:
        cold_open = sum(1 for s in self._open.values() if s.cold)
        return cold_open + sum(1 for s in self.segments if s.cold)

    # ------------------------------------------------------------------
    # Billing
    # ------------------------------------------------------------------

    def used_serverless(self) -> bool:
        """Whether any SL executed work during this lease."""
        return any(
            segment.kind is InstanceKind.SERVERLESS
            and segment.tasks_executed > 0
            for segment in self.segments
        )

    def cost_report(
        self, query_duration: float, prices: PriceBook
    ) -> CostBreakdown:
        """Itemised bill for this lease (Section 5, "Cost estimation").

        VM intervals bill per leased second (compute + burst + storage);
        SL intervals bill per second plus the invocation fee for cold
        spawns; the external Redis host bills for the query duration when
        at least one SL served it.  Warm hand-overs carry no invocation
        fee -- the original long-running invocation simply continues.
        """
        report = CostBreakdown()
        for segment in self.segments:
            if segment.kind is InstanceKind.VM:
                report = report + prices.vm_breakdown(segment.seconds)
            else:
                report = report + prices.sl_breakdown(
                    segment.seconds, invocations=1 if segment.cold else 0
                )
        if self.used_serverless():
            report.external_store += prices.redis_charge(query_duration)
        return report


class ClusterPool:
    """Owns VM/SL instances across query lifetimes.

    Parameters
    ----------
    simulator:
        The (possibly shared) discrete-event core; boots, keep-alive
        expiries and queued grants are all events on its heap.
    provider / prices:
        Cold-boot latencies and billing rates.
    config:
        Capacity and warm-start parameters.
    autoscaler:
        Keep-alive policy; defaults to :class:`FixedKeepAlive` built from
        the config's windows (i.e. a cold pool with the default config).
    """

    def __init__(
        self,
        simulator: Simulator,
        provider: ProviderProfile,
        prices: PriceBook,
        config: PoolConfig | None = None,
        autoscaler: AutoscalerPolicy | None = None,
    ) -> None:
        self.simulator = simulator
        self.provider = provider
        self.prices = prices
        self.config = config or PoolConfig()
        self.autoscaler = autoscaler or FixedKeepAlive(
            self.config.vm_keep_alive_s, self.config.sl_keep_alive_s
        )
        self.stats = PoolStats()
        self.keepalive_cost = CostBreakdown()
        # Warm sets keyed by instance id; dict order gives LIFO reuse
        # (warmest first) via popitem() and O(1) expiry removal.
        self._warm: dict[InstanceKind, dict[str, Instance]] = {
            InstanceKind.VM: {},
            InstanceKind.SERVERLESS: {},
        }
        self._idle_since: dict[str, float] = {}
        self._expiry_handles: dict[str, EventHandle] = {}
        self._leased_vms = 0
        self._leased_sls = 0
        self._queue: collections.deque[PoolLease] = collections.deque()
        self._grant_times: collections.deque[float] = collections.deque()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def leased_vms(self) -> int:
        return self._leased_vms

    @property
    def leased_sls(self) -> int:
        return self._leased_sls

    @property
    def warm_vms(self) -> int:
        return len(self._warm[InstanceKind.VM])

    @property
    def warm_sls(self) -> int:
        return len(self._warm[InstanceKind.SERVERLESS])

    @property
    def pending_requests(self) -> int:
        return len(self._queue)

    @property
    def keepalive_cost_dollars(self) -> float:
        return self.keepalive_cost.total

    def recent_acquire_rate(self, window_s: float) -> float:
        """Lease grants per second over the trailing ``window_s``.

        Non-destructive: the grant history is only pruned beyond a fixed
        retention horizon, so introspection calls with a small window
        cannot perturb an autoscaler watching a larger one.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        retention = self.simulator.now - _GRANT_HISTORY_RETENTION_S
        while self._grant_times and self._grant_times[0] < retention:
            self._grant_times.popleft()
        horizon = self.simulator.now - window_s
        count = sum(1 for t in self._grant_times if t >= horizon)
        return count / window_s

    def describe(self) -> str:
        return (
            f"ClusterPool(max={self.config.max_vms}VM+{self.config.max_sls}SL, "
            f"{self.autoscaler.describe()})"
        )

    # ------------------------------------------------------------------
    # Acquire
    # ------------------------------------------------------------------

    def acquire(
        self,
        n_vm: int,
        n_sl: int,
        on_instance_ready: Callable[[Instance, bool], None],
        on_granted: Callable[[PoolLease], None] | None = None,
    ) -> PoolLease:
        """Request ``n_vm`` VMs plus ``n_sl`` SLs for one query.

        Requests are clamped to the pool's capacity.  When enough free
        capacity exists (and no earlier request is waiting) the lease is
        granted synchronously; otherwise it queues FIFO.  Per ready
        worker, ``on_instance_ready(instance, warm)`` fires after the
        (warm or cold) boot; ``on_granted(lease)`` fires once at grant
        time, after the lease's instance lists are filled.
        """
        if n_vm < 0 or n_sl < 0:
            raise ValueError("instance counts must be non-negative")
        if n_vm + n_sl == 0:
            raise ValueError("at least one instance is required")
        clamped_vm = min(n_vm, self.config.max_vms)
        clamped_sl = min(n_sl, self.config.max_sls)
        if clamped_vm + clamped_sl == 0:
            raise ValueError(
                f"the pool has no capacity for a ({n_vm} VM, {n_sl} SL) "
                f"request (max {self.config.max_vms} VM, "
                f"{self.config.max_sls} SL)"
            )
        lease = PoolLease(
            n_vm=clamped_vm,
            n_sl=clamped_sl,
            requested_at=self.simulator.now,
            on_instance_ready=on_instance_ready,
            on_granted=on_granted,
            requested_vm=n_vm,
            requested_sl=n_sl,
        )
        if not self._queue and self._grantable(lease):
            self._grant(lease)
        else:
            self._queue.append(lease)
            self.stats.leases_queued += 1
        return lease

    def _grantable(self, lease: PoolLease) -> bool:
        return (
            lease.n_vm <= self.config.max_vms - self._leased_vms
            and lease.n_sl <= self.config.max_sls - self._leased_sls
        )

    def _grant(self, lease: PoolLease) -> None:
        now = self.simulator.now
        lease.granted_at = now
        self.stats.leases_granted += 1
        self._grant_times.append(now)
        for _ in range(lease.n_vm):
            lease.vms.append(self._hand_over(lease, InstanceKind.VM))
        for _ in range(lease.n_sl):
            lease.sls.append(self._hand_over(lease, InstanceKind.SERVERLESS))
        self._leased_vms += lease.n_vm
        self._leased_sls += lease.n_sl
        self.stats.peak_leased_vms = max(
            self.stats.peak_leased_vms, self._leased_vms
        )
        self.stats.peak_leased_sls = max(
            self.stats.peak_leased_sls, self._leased_sls
        )
        if lease.on_granted is not None:
            lease.on_granted(lease)

    def _hand_over(self, lease: PoolLease, kind: InstanceKind) -> Instance:
        """Reuse a warm instance (LIFO, warmest first) or spawn cold."""
        now = self.simulator.now
        warm_set = self._warm[kind]
        if warm_set:
            _, instance = warm_set.popitem()
            self._end_idle(instance, now)
            self.stats.warm_starts += 1
            cold = False
            boot = (
                self.config.warm_vm_boot_s
                if kind is InstanceKind.VM
                else self.config.warm_sl_boot_s
            )
        else:
            if kind is InstanceKind.VM:
                instance = VMInstance.create(spawn_time=now)
                boot = self.provider.vm_boot_seconds
            else:
                instance = ServerlessInstance.create(spawn_time=now)
                boot = self.provider.sl_boot_seconds
            instance.transition(InstanceState.BOOTING, now)
            self.stats.cold_starts += 1
            cold = True
        segment = _OpenSegment(
            instance=instance,
            start=now,
            cold=cold,
            tasks_at_open=instance.tasks_executed,
        )
        lease._open[instance.instance_id] = segment
        segment.boot_handle = self.simulator.schedule(
            boot, lambda: self._finish_boot(lease, segment)
        )
        return instance

    def _finish_boot(self, lease: PoolLease, segment: _OpenSegment) -> None:
        instance = segment.instance
        if not lease.is_active(instance):
            return  # released (or the query completed) before hand-over
        if instance.state is InstanceState.BOOTING:
            instance.transition(InstanceState.RUNNING, self.simulator.now)
        lease.on_instance_ready(instance, not segment.cold)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release_instance(self, lease: PoolLease, instance: Instance) -> None:
        """Return one worker to the pool and close its billing segment."""
        segment = lease._open.pop(instance.instance_id, None)
        if segment is None:
            raise ValueError(
                f"{instance.instance_id} is not leased by {lease.lease_id}"
            )
        now = self.simulator.now
        if segment.boot_handle is not None:
            self.simulator.cancel(segment.boot_handle)
        lease.segments.append(
            BillingSegment(
                kind=instance.kind,
                start=segment.start,
                end=now,
                cold=segment.cold,
                tasks_executed=instance.tasks_executed - segment.tasks_at_open,
            )
        )
        if instance.kind is InstanceKind.VM:
            self._leased_vms -= 1
        else:
            self._leased_sls -= 1

        if instance.state is InstanceState.BOOTING:
            # Released before the cold boot completed -- a half-booted
            # executor cannot be parked.  (A *warm* instance released
            # mid-re-attach is RUNNING and stays eligible for parking;
            # its stale hand-over event no-ops via the lease guard.)
            self._terminate(instance, now)
        else:
            keep_alive = self.autoscaler.keep_alive(instance.kind, self)
            if keep_alive > 0.0:
                self._park(instance, keep_alive, now)
            else:
                self._terminate(instance, now)
        self._pump()

    def release(self, lease: PoolLease) -> None:
        """Release every worker the lease still holds."""
        for instance in list(lease.active_instances):
            self.release_instance(lease, instance)

    def _park(self, instance: Instance, keep_alive: float, now: float) -> None:
        self._warm[instance.kind][instance.instance_id] = instance
        self._idle_since[instance.instance_id] = now
        self._expiry_handles[instance.instance_id] = self.simulator.schedule(
            keep_alive, lambda: self._expire(instance)
        )

    def _expire(self, instance: Instance) -> None:
        if self._warm[instance.kind].pop(instance.instance_id, None) is None:
            return  # reused before the (stale) expiry fired
        now = self.simulator.now
        self._end_idle(instance, now)
        self._terminate(instance, now)
        self.stats.expirations += 1

    def _end_idle(self, instance: Instance, now: float) -> None:
        """Close an idle interval, accruing its keep-alive cost."""
        handle = self._expiry_handles.pop(instance.instance_id, None)
        if handle is not None:
            self.simulator.cancel(handle)
        idle_since = self._idle_since.pop(instance.instance_id, None)
        if idle_since is None:
            return
        idle = max(now - idle_since, 0.0)
        if instance.kind is InstanceKind.VM:
            idle_cost = self.prices.vm_breakdown(idle)
        else:
            idle_cost = self.prices.sl_breakdown(idle, invocations=0)
        self.keepalive_cost = self.keepalive_cost + idle_cost

    def _terminate(self, instance: Instance, now: float) -> None:
        if instance.state is not InstanceState.TERMINATED:
            instance.transition(InstanceState.TERMINATED, now)

    def _pump(self) -> None:
        """Grant queued requests FIFO while capacity allows."""
        while self._queue and self._grantable(self._queue[0]):
            self._grant(self._queue.popleft())

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate all warm instances (end of the serving day)."""
        now = self.simulator.now
        for warm_set in self._warm.values():
            for instance in list(warm_set.values()):
                self._end_idle(instance, now)
                self._terminate(instance, now)
            warm_set.clear()
