"""The shared-cluster pool: warm instances across query lifetimes.

The paper's evaluation gives every query a throwaway set of workers, but a
deployed Smartpick faces Section 2.1's stream of ad-hoc arrivals -- and
there, warm serverless/VM instances are the single biggest latency and
cost lever.  :class:`ClusterPool` owns VM and SL instances *across* query
lifetimes:

- A query **acquires** workers through a :class:`PoolLease`; warm
  instances are handed over after a short warm-boot delay, the remainder
  are spawned cold at the provider's full boot latency.
- Capacity is partitioned into named **shards** (per instance family, AZ,
  ...), each with its own warm set and grant queue; a pluggable
  :class:`ShardRouter` places each request, and idle shards **steal**
  queued requests from saturated ones so the pool stays work-conserving.
- When a shard's capacity is exhausted the request queues and is granted
  as earlier leases release workers.  Grant *ordering* is a pluggable
  :class:`GrantPolicy`: the default :class:`WeightedFairGrant` serves the
  tenant with the least weight-normalised service first (degenerating to
  exact FIFO with a single tenant), while :class:`FifoGrant` keeps the
  plain arrival-order queue for comparison.
- Pools are **multi-tenant**: every lease belongs to a tenant, and a
  :class:`TenantRegistry` assigns per-tenant fair-share weights and hard
  quotas (max concurrently leased VMs / SLs).  A quota-blocked request
  waits without blocking other tenants; the wait is recorded on the lease
  as ``quota_delay_s``.
- **Released** instances stay warm for a keep-alive window decided by a
  pluggable :class:`AutoscalerPolicy`; a reuse within the window cancels
  the expiry timer (via :meth:`Simulator.cancel`), otherwise the instance
  is terminated and its idle time is billed as keep-alive cost.
  Autoscaling is **per shard**: every shard carries its own arrival
  meter and may carry its own policy (``shard_autoscalers``), so a hot
  shard keeps workers warm while a drained shard terminates on release
  -- keep-alive cost is likewise accounted per shard.
- Billing is per-lease: each instance's leased interval is charged to the
  query that held it, while idle warm time accrues to the pool's
  keep-alive cost -- so shared-cluster bills stay itemised per query (and
  therefore per tenant: chargeback is bookkeeping on top of the leases).
"""

from __future__ import annotations

import abc
import collections
import dataclasses
import itertools
import zlib
from typing import TYPE_CHECKING, Callable, Iterable

from repro.cloud.instances import (
    Instance,
    InstanceKind,
    InstanceState,
    ServerlessInstance,
    VMInstance,
)
from repro.cloud.pricing import CostBreakdown, PriceBook
from repro.cloud.providers import ProviderProfile

if TYPE_CHECKING:  # avoid a runtime cloud <-> engine import cycle
    from repro.cloud.faults import FaultInjector
    from repro.core.epochs import PoolPlan
    from repro.engine.simulator import EventHandle, Simulator

#: How long grant timestamps are retained for rate estimation; windows
#: larger than this are silently truncated to it.
_GRANT_HISTORY_RETENTION_S = 3600.0

#: The tenant every unattributed request bills to.
DEFAULT_TENANT = "default"

__all__ = [
    "AutoscalerPolicy",
    "ClusterPool",
    "DEFAULT_TENANT",
    "DeadlineAwareGrant",
    "DemandAutoscaler",
    "FifoGrant",
    "FixedKeepAlive",
    "GrantPolicy",
    "HealthAwareRouter",
    "LeastLoadedRouter",
    "NoKeepAlive",
    "PoolConfig",
    "PoolLease",
    "PoolShard",
    "PoolStats",
    "ShardRouter",
    "TENANT_TIERS",
    "TenantAffinityRouter",
    "TenantRegistry",
    "TenantSpec",
    "WeightedFairGrant",
]


@dataclasses.dataclass(frozen=True)
class PoolConfig:
    """Sizing and warm-start parameters of one shared cluster (or shard).

    Attributes
    ----------
    max_vms / max_sls:
        Hard capacity of the pool; acquire requests beyond it are clamped,
        and requests that cannot be granted from free capacity queue.
    vm_keep_alive_s / sl_keep_alive_s:
        Keep-alive window applied by the default (fixed) autoscaler when a
        worker is released.  ``0`` means terminate immediately (cold pool).
    warm_vm_boot_s / warm_sl_boot_s:
        Hand-over latency of a warm instance -- the executor re-attach
        cost, orders of magnitude below the provider's cold boot.
    """

    max_vms: int = 64
    max_sls: int = 256
    vm_keep_alive_s: float = 0.0
    sl_keep_alive_s: float = 0.0
    warm_vm_boot_s: float = 2.0
    warm_sl_boot_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_vms < 0 or self.max_sls < 0:
            raise ValueError("pool capacities must be non-negative")
        if self.max_vms + self.max_sls == 0:
            raise ValueError("the pool must have capacity for some worker")
        for name in ("vm_keep_alive_s", "sl_keep_alive_s",
                     "warm_vm_boot_s", "warm_sl_boot_s"):
            value = getattr(self, name)
            if not value >= 0.0 or value == float("inf"):
                raise ValueError(f"{name} must be finite and non-negative")


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------


#: The two service tiers SLO scheduling distinguishes.  Interactive
#: tenants hold latency SLOs and are never preemption victims; batch
#: tenants may be cooperatively preempted (checkpoint + requeue) when an
#: interactive request is about to miss its deadline.
TENANT_TIERS = ("batch", "interactive")


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's fair-share weight, hard quotas and SLO tier.

    Attributes
    ----------
    weight:
        Fair-share weight used by :class:`WeightedFairGrant`; a tenant
        with twice the weight is entitled to twice the service before it
        yields the grant queue.
    max_leased_vms / max_leased_sls:
        Hard cap on the tenant's *concurrently leased* workers across the
        whole pool (``None`` = unlimited).  Single requests larger than
        the quota are clamped to it, like pool-capacity clamping.
    max_in_flight:
        Cap on the tenant's concurrently in-flight queries.  The pool does
        not see queries, so this quota is enforced by the admission layer
        (:class:`~repro.core.serving.ServingSimulator`), not here.
    slo_latency_s:
        The tenant's end-to-end latency SLO (``None`` = no SLO).  Leases
        acquired without an explicit deadline derive one from this
        (``request time + slo_latency_s``); :class:`DeadlineAwareGrant`
        orders the queue by the remaining slack against it, and serving
        reports per-tenant attainment against it.
    tier:
        ``"interactive"`` or ``"batch"``.  Only batch-tier leases whose
        holder registered a checkpoint hook are eligible victims for
        cooperative preemption.
    """

    name: str
    weight: float = 1.0
    max_leased_vms: int | None = None
    max_leased_sls: int | None = None
    max_in_flight: int | None = None
    slo_latency_s: float | None = None
    tier: str = "batch"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.weight > 0.0 or self.weight == float("inf"):
            raise ValueError("tenant weight must be finite and positive")
        for field_name in ("max_leased_vms", "max_leased_sls"):
            value = getattr(self, field_name)
            if value is not None and value < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.slo_latency_s is not None and not self.slo_latency_s > 0.0:
            raise ValueError("slo_latency_s must be positive")
        if self.tier not in TENANT_TIERS:
            raise ValueError(
                f"tier must be one of {TENANT_TIERS}, got {self.tier!r}"
            )


class TenantRegistry:
    """The known tenants, their weights and their quotas.

    Unknown tenants resolve to an unlimited weight-1 spec, so a registry
    is never required for single-tenant use; pass ``strict=True`` to
    reject unregistered tenant names instead (a closed platform).
    """

    def __init__(
        self, tenants: Iterable[TenantSpec] = (), strict: bool = False
    ) -> None:
        self._specs: dict[str, TenantSpec] = {}
        self._default_specs: dict[str, TenantSpec] = {}
        self.strict = strict
        for spec in tenants:
            self.register(spec)

    def register(self, spec: TenantSpec) -> TenantSpec:
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> TenantSpec:
        spec = self._specs.get(name)
        if spec is None:
            if self.strict:
                raise KeyError(f"unknown tenant {name!r}")
            # Cache the implicit unlimited spec: lookups run per lease
            # on the serving hot path, and the spec is immutable.  The
            # cache is invisible to ``names`` / ``__iter__`` / ``in``,
            # so registry introspection still lists only real tenants.
            spec = self._default_specs.get(name)
            if spec is None:
                spec = self._default_specs[name] = TenantSpec(name=name)
        return spec

    def weight(self, name: str) -> float:
        return self.get(name).weight

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


# ---------------------------------------------------------------------------
# Autoscaling
# ---------------------------------------------------------------------------


class AutoscalerPolicy(abc.ABC):
    """Decides how long a released worker stays warm.

    The pool invokes :meth:`keep_alive` with the :class:`PoolShard` the
    worker is returning to, so policies can scale each shard on its own
    signal (arrival meter, warm set, config); ``shard`` stays optional
    so policies remain directly callable without one (pool-global view).
    """

    @abc.abstractmethod
    def keep_alive(
        self,
        kind: InstanceKind,
        pool: "ClusterPool",
        shard: "PoolShard | None" = None,
    ) -> float:
        """Keep-alive seconds for a ``kind`` worker released to ``shard``."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable policy name for reports."""


class FixedKeepAlive(AutoscalerPolicy):
    """Static keep-alive windows per worker kind (the config default)."""

    def __init__(self, vm_keep_alive_s: float, sl_keep_alive_s: float) -> None:
        if vm_keep_alive_s < 0 or sl_keep_alive_s < 0:
            raise ValueError("keep-alive windows must be non-negative")
        self.vm_keep_alive_s = vm_keep_alive_s
        self.sl_keep_alive_s = sl_keep_alive_s

    def keep_alive(
        self,
        kind: InstanceKind,
        pool: "ClusterPool",
        shard: "PoolShard | None" = None,
    ) -> float:
        if kind is InstanceKind.VM:
            return self.vm_keep_alive_s
        return self.sl_keep_alive_s

    def describe(self) -> str:
        return (
            f"fixed-keep-alive(vm={self.vm_keep_alive_s:g}s, "
            f"sl={self.sl_keep_alive_s:g}s)"
        )


class NoKeepAlive(FixedKeepAlive):
    """Cold pool: every release terminates immediately."""

    def __init__(self) -> None:
        super().__init__(0.0, 0.0)

    def describe(self) -> str:
        return "no-keep-alive"


class DemandAutoscaler(AutoscalerPolicy):
    """Keep-alive sized to the observed acquisition rate.

    Estimates the lease arrival rate over a sliding ``window_s`` and keeps
    released workers warm for ``headroom`` expected inter-arrival gaps
    (capped at ``max_keep_alive_s``).  Under a burst the expected gap is
    short, so instances are confidently retained for the next arrival;
    when traffic dries up the expected gap -- and the cap -- bound the
    idle spend.

    The rate is metered **per shard** when the pool supplies one: a
    worker released to a shard whose own grant stream dried up terminates
    immediately, even while another shard's burst keeps the pool-global
    rate high (the pre-per-shard behaviour, still available by calling
    the policy without a shard).
    """

    def __init__(
        self,
        window_s: float = 600.0,
        headroom: float = 3.0,
        max_keep_alive_s: float = 300.0,
    ) -> None:
        if window_s <= 0 or headroom <= 0 or max_keep_alive_s < 0:
            raise ValueError("autoscaler parameters must be positive")
        if window_s > _GRANT_HISTORY_RETENTION_S:
            raise ValueError(
                f"window_s must not exceed the grant-history retention "
                f"({_GRANT_HISTORY_RETENTION_S:g}s)"
            )
        self.window_s = window_s
        self.headroom = headroom
        self.max_keep_alive_s = max_keep_alive_s

    def keep_alive(
        self,
        kind: InstanceKind,
        pool: "ClusterPool",
        shard: "PoolShard | None" = None,
    ) -> float:
        rate = pool.recent_acquire_rate(
            self.window_s, shard=None if shard is None else shard.name
        )
        if rate <= 0.0:
            return 0.0
        return min(self.max_keep_alive_s, self.headroom / rate)

    def describe(self) -> str:
        return (
            f"demand-autoscaler(window={self.window_s:g}s, "
            f"headroom={self.headroom:g}, max={self.max_keep_alive_s:g}s)"
        )


@dataclasses.dataclass
class PoolStats:
    """Aggregate pool behaviour over one simulation."""

    cold_starts: int = 0
    warm_starts: int = 0
    #: Workers pre-booted by a :meth:`ClusterPool.apply_plan` ahead of any
    #: lease (proactive provisioning).  Not an acquisition: a pre-warmed
    #: worker that is later handed over counts as a ``warm_start`` then.
    prewarms: int = 0
    expirations: int = 0
    leases_granted: int = 0
    leases_queued: int = 0
    peak_leased_vms: int = 0
    peak_leased_sls: int = 0
    #: Queued requests granted by a shard other than the one they were
    #: routed to (work stealing keeps sharded pools work-conserving).
    work_steals: int = 0
    #: Leases that at least once waited on a tenant quota while shard
    #: capacity was otherwise available.
    quota_deferrals: int = 0
    #: Fault-injection outcomes (all zero without a fault plan): kills
    #: by cause, leases revoked mid-flight, and warm-parked workers
    #: killed outside any lease.
    preemptions: int = 0
    sl_faults: int = 0
    sl_timeouts: int = 0
    boot_failures: int = 0
    warm_kills: int = 0
    leases_revoked: int = 0
    #: Cooperative preemptions: batch-tier leases checkpointed, revoked
    #: and requeued so a deadline-pressed interactive request could be
    #: granted (distinct from fault-injected ``preemptions``).
    coop_preemptions: int = 0
    #: Exact time conservation ledger: every second of a pooled
    #: instance's life (spawn to termination) is either *leased* to a
    #: query or *idle* in a warm set, so ``instance_seconds`` equals
    #: ``leased_seconds + idle_seconds`` (up to float interval
    #: arithmetic) once the pool has shut down.
    leased_seconds: float = 0.0
    idle_seconds: float = 0.0
    instance_seconds: float = 0.0
    #: Leased seconds forfeited by revocations (a subset of
    #: ``leased_seconds`` -- the time ledger still balances; this
    #: measures how much of it bought nothing).
    wasted_seconds: float = 0.0

    @property
    def acquisitions(self) -> int:
        return self.cold_starts + self.warm_starts

    @property
    def warm_start_rate(self) -> float:
        """Fraction of worker acquisitions served from the warm set."""
        if self.acquisitions == 0:
            return 0.0
        return self.warm_starts / self.acquisitions

    @property
    def idle_fraction(self) -> float:
        """Fraction of instance lifetime spent idle in a warm set.

        ``idle_seconds / instance_seconds`` from the time-conservation
        ledger -- the keep-alive waste a predictive policy exists to
        shrink.  0 when no instance ever ran.
        """
        if self.instance_seconds <= 0.0:
            return 0.0
        return self.idle_seconds / self.instance_seconds


@dataclasses.dataclass(frozen=True, slots=True)
class BillingSegment:
    """One instance's leased interval, attributed to one query."""

    kind: InstanceKind
    start: float
    end: float
    cold: bool
    tasks_executed: int

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(slots=True)
class _OpenSegment:
    instance: Instance
    start: float
    cold: bool
    tasks_at_open: int
    boot_handle: EventHandle | None = None
    #: Absolute ready time for hand-overs that need no boot *event*: a
    #: warm worker granted to a holder with ``on_instance_ready=None``
    #: (a compiled plan runner) has nothing to run at boot time -- the
    #: instance is already RUNNING and the holder's timeline is local --
    #: so the pool records the would-be fire time here instead of
    #: paying a heap event per acquisition.
    ready_at: float | None = None


class PoolLease:
    """One query's tenancy in the pool.

    Created by :meth:`ClusterPool.acquire`; the pool fills in instances at
    grant time (which may be later than the request under saturation) and
    closes billing segments as workers are released.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        n_vm: int,
        n_sl: int,
        requested_at: float,
        on_instance_ready: Callable[[Instance, bool], None] | None,
        on_granted: Callable[["PoolLease"], None] | None = None,
        requested_vm: int | None = None,
        requested_sl: int | None = None,
        tenant: str = DEFAULT_TENANT,
        deadline_s: float | None = None,
        tier: str = "batch",
    ) -> None:
        self.seq = next(self._ids)
        self.n_vm = n_vm
        self.n_sl = n_sl
        self.requested_vm = n_vm if requested_vm is None else requested_vm
        self.requested_sl = n_sl if requested_sl is None else requested_sl
        self.requested_at = requested_at
        self.granted_at: float | None = None
        self.tenant = tenant
        #: Absolute SLO deadline the request is racing (``None`` = no
        #: deadline).  :class:`DeadlineAwareGrant` orders queued requests
        #: by the remaining slack against it.
        self.deadline_s = deadline_s
        #: The tenant's service tier at request time ("interactive" or
        #: "batch"); only batch leases are preemption victims.
        self.tier = tier
        #: Name of the shard serving the lease; routed at request time,
        #: reassigned if another shard steals the queued request.
        self.shard: str | None = None
        #: Start of the lease's *current* quota-blocked interval: it was
        #: last evaluated with shard capacity available but its tenant
        #: over quota (None = not currently quota-blocked).
        self.quota_blocked_since: float | None = None
        #: Seconds of the queueing delay attributable to tenant quotas
        #: rather than raw capacity.  Accumulated per quota-blocked
        #: interval: an interval closes when the lease is next found
        #: capacity-blocked instead (the wait is the pool's fault again)
        #: or when it is granted.
        self.quota_delay_s: float = 0.0
        self._quota_ever_blocked = False
        self.on_instance_ready = on_instance_ready
        self.on_granted = on_granted
        #: Set by the holder (e.g. the task scheduler) to be told when a
        #: fault revokes the lease mid-flight; receives the kill reason.
        self.on_revoked: Callable[[str], None] | None = None
        #: Cooperative-preemption checkpoint hook.  A holder that can
        #: suspend its work (capture in-flight task remainders and
        #: requeue) sets this; the pool calls it immediately *before*
        #: revoking the lease as a preemption victim, so the holder can
        #: checkpoint while its scheduled events are still live.  Leases
        #: without the hook are never preempted.
        self.on_preempt: Callable[[str], None] | None = None
        #: How many times this lease was cooperatively preempted (set by
        #: the pool for observability; a requeued attempt is a new lease).
        self.preempted = False
        #: Whether a fault revoked this lease before it released cleanly.
        self.revoked = False
        #: Itemised cost of the revoked attempt (forfeited into the
        #: pool's wasted-cost ledger; zero unless ``revoked``).
        self.revoked_cost = CostBreakdown()
        self.vms: list[VMInstance] = []
        self.sls: list[ServerlessInstance] = []
        self._open: dict[str, _OpenSegment] = {}
        self.segments: list[BillingSegment] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def lease_id(self) -> str:
        """Stable display identifier (derived from ``seq`` on demand)."""
        return f"lease-{self.seq:06d}"

    @property
    def is_granted(self) -> bool:
        return self.granted_at is not None

    @property
    def was_clamped(self) -> bool:
        """Whether the pool granted fewer workers than were requested.

        A clamped query executed a *different* configuration from the one
        the caller (e.g. the predictor) asked for -- consumers comparing
        predictions to outcomes should check this flag.
        """
        return (self.n_vm, self.n_sl) != (self.requested_vm, self.requested_sl)

    @property
    def queueing_delay_s(self) -> float:
        """Seconds the request waited for pool capacity (0 when instant)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.requested_at

    def slack_s(self, now: float) -> float:
        """Seconds of headroom until the deadline (+inf without one)."""
        if self.deadline_s is None:
            return float("inf")
        return self.deadline_s - now

    @property
    def active_instances(self) -> list[Instance]:
        return [segment.instance for segment in self._open.values()]

    def is_active(self, instance: Instance) -> bool:
        return instance.instance_id in self._open

    def scheduled_ready_time(self, instance: Instance) -> float | None:
        """Absolute time the instance's boot event is scheduled to fire.

        ``None`` once the boot has fired or the instance was released.
        Compiled plan runners read this at grant time to seed their
        local timelines without waiting for the boot events.
        """
        segment = self._open.get(instance.instance_id)
        if segment is None:
            return None
        if segment.boot_handle is None:
            return segment.ready_at
        if segment.boot_handle.cancelled:
            return None
        return segment.boot_handle.time

    @property
    def warm_acquisitions(self) -> int:
        warm = 0
        for s in self._open.values():
            if not s.cold:
                warm += 1
        for s in self.segments:
            if not s.cold:
                warm += 1
        return warm

    @property
    def cold_acquisitions(self) -> int:
        cold = 0
        for s in self._open.values():
            if s.cold:
                cold += 1
        for s in self.segments:
            if s.cold:
                cold += 1
        return cold

    # ------------------------------------------------------------------
    # Billing
    # ------------------------------------------------------------------

    def used_serverless(self) -> bool:
        """Whether any SL executed work during this lease."""
        return any(
            segment.kind is InstanceKind.SERVERLESS
            and segment.tasks_executed > 0
            for segment in self.segments
        )

    def cost_report(
        self, query_duration: float, prices: PriceBook
    ) -> CostBreakdown:
        """Itemised bill for this lease (Section 5, "Cost estimation").

        VM intervals bill per leased second (compute + burst + storage);
        SL intervals bill per second plus the invocation fee for cold
        spawns; the external Redis host bills for the query duration when
        at least one SL served it.  Warm hand-overs carry no invocation
        fee -- the original long-running invocation simply continues.
        """
        # Scalar left-fold per field, in segment order -- bitwise equal
        # to summing per-segment breakdown objects, without allocating
        # one per segment (this runs once per completed query).
        vm_rate = prices.vm_per_second
        burst_rate = prices.vm_burst_per_second
        storage_rate = prices.vm_storage_per_second
        sl_rate = prices.sl_per_second
        report = CostBreakdown()
        used_sl = False
        for segment in self.segments:
            seconds = segment.end - segment.start
            if segment.kind is InstanceKind.VM:
                report.vm_compute += seconds * vm_rate
                report.vm_burst += seconds * burst_rate
                report.vm_storage += seconds * storage_rate
            else:
                report.sl_compute += seconds * sl_rate
                if segment.cold:
                    report.sl_invocations += prices.sl_invocation
                if segment.tasks_executed > 0:
                    used_sl = True
        if used_sl:
            report.external_store += prices.redis_charge(query_duration)
        return report


# ---------------------------------------------------------------------------
# Shards
# ---------------------------------------------------------------------------


class PoolShard:
    """One named partition of the pool: capacity, warm set, grant queue.

    Each shard additionally owns the state per-shard autoscaling runs
    on: its own grant-time meter (``grant_times``), an optional policy
    override (``autoscaler``, ``None`` = the pool default) and its own
    keep-alive cost ledger -- so a drained shard's idle spend is
    observable in isolation from a hot one's.
    """

    __slots__ = (
        "name", "config", "warm", "leased_vms", "leased_sls", "queue",
        "autoscaler", "grant_times", "keepalive_cost", "fault_times",
        "wasted_cost",
    )

    def __init__(
        self,
        name: str,
        config: PoolConfig,
        autoscaler: "AutoscalerPolicy | None" = None,
    ) -> None:
        self.name = name
        self.config = config
        self.warm: dict[InstanceKind, dict[str, Instance]] = {
            InstanceKind.VM: {},
            InstanceKind.SERVERLESS: {},
        }
        self.leased_vms = 0
        self.leased_sls = 0
        self.queue: list[PoolLease] = []
        #: Keep-alive policy override for this shard (None = pool default).
        self.autoscaler = autoscaler
        #: Grant timestamps on THIS shard (the per-shard arrival meter).
        self.grant_times: collections.deque[float] = collections.deque()
        #: Idle warm spend accrued by workers parked on this shard.
        self.keepalive_cost = CostBreakdown()
        #: Timestamps of injected kills on this shard (the health meter
        #: :class:`HealthAwareRouter` circuit-breaks on).
        self.fault_times: collections.deque[float] = collections.deque()
        #: Leased spend forfeited by revocations on this shard.
        self.wasted_cost = CostBreakdown()

    @property
    def free_vms(self) -> int:
        return self.config.max_vms - self.leased_vms

    @property
    def free_sls(self) -> int:
        return self.config.max_sls - self.leased_sls

    @property
    def warm_vms(self) -> int:
        return len(self.warm[InstanceKind.VM])

    @property
    def warm_sls(self) -> int:
        return len(self.warm[InstanceKind.SERVERLESS])

    @property
    def pending_requests(self) -> int:
        return len(self.queue)

    def fits(self, lease: PoolLease) -> bool:
        """Whether the lease can be granted from this shard's free capacity."""
        return lease.n_vm <= self.free_vms and lease.n_sl <= self.free_sls


class ShardRouter(abc.ABC):
    """Places an acquire request onto one of the pool's shards."""

    @abc.abstractmethod
    def route(
        self, n_vm: int, n_sl: int, tenant: str, pool: "ClusterPool"
    ) -> str:
        """Name of the shard the request should home on."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable router name for reports."""


class LeastLoadedRouter(ShardRouter):
    """Route to the shard that can serve the most of the request, freest
    first.

    Shards are scored by how much of the (possibly capacity-clamped)
    request they could ever hold, then by current free slots; ties keep
    declaration order, so a single-shard pool routes trivially.
    """

    def route(
        self, n_vm: int, n_sl: int, tenant: str, pool: "ClusterPool"
    ) -> str:
        best_name: str | None = None
        best_key: tuple[int, int] | None = None
        for shard in pool.shards:
            coverage = (
                min(n_vm, shard.config.max_vms)
                + min(n_sl, shard.config.max_sls)
            )
            key = (coverage, shard.free_vms + shard.free_sls)
            if best_key is None or key > best_key:
                best_name, best_key = shard.name, key
        assert best_name is not None  # pools always have >= 1 shard
        return best_name

    def describe(self) -> str:
        return "least-loaded"


class TenantAffinityRouter(ShardRouter):
    """Pin each tenant to one shard (stable hash of the tenant name).

    Affinity concentrates a tenant's warm instances on one shard, raising
    its warm-start rate; work stealing still drains the queue when the
    home shard saturates.  With *heterogeneous* shards, affinity only
    applies among the shards that can serve the most of the request
    (capacity-wise) -- pinning a VM+SL request to an SL-only shard would
    silently drop the VMs, so incapable shards are excluded first.
    """

    def route(
        self, n_vm: int, n_sl: int, tenant: str, pool: "ClusterPool"
    ) -> str:
        def coverage(shard: PoolShard) -> int:
            return (
                min(n_vm, shard.config.max_vms)
                + min(n_sl, shard.config.max_sls)
            )

        shards = pool.shards
        best = max(coverage(shard) for shard in shards)
        capable = [s.name for s in shards if coverage(s) == best]
        index = zlib.crc32(tenant.encode("utf-8")) % len(capable)
        return capable[index]

    def describe(self) -> str:
        return "tenant-affinity"


class HealthAwareRouter(ShardRouter):
    """Route away from shards that have been killing workers recently.

    Shards are first filtered to those that can serve the most of the
    request (like the other routers); among them, any shard whose
    injected-kill count over the trailing ``window_s`` reaches
    ``trip_threshold`` is *circuit-broken* -- excluded from routing --
    unless every capable shard is tripped, in which case the router
    degrades to the least-faulty one rather than deadlocking.  Healthy
    candidates are ranked fewest-recent-faults first, then freest.
    """

    def __init__(
        self, window_s: float = 300.0, trip_threshold: int = 3
    ) -> None:
        if window_s <= 0 or window_s > _GRANT_HISTORY_RETENTION_S:
            raise ValueError(
                "window_s must be positive and within the "
                f"{_GRANT_HISTORY_RETENTION_S:g}s fault-history retention"
            )
        if trip_threshold < 1:
            raise ValueError("trip_threshold must be at least 1")
        self.window_s = window_s
        self.trip_threshold = trip_threshold

    def route(
        self, n_vm: int, n_sl: int, tenant: str, pool: "ClusterPool"
    ) -> str:
        horizon = pool.simulator.now - self.window_s

        def coverage(shard: PoolShard) -> int:
            return (
                min(n_vm, shard.config.max_vms)
                + min(n_sl, shard.config.max_sls)
            )

        def recent_faults(shard: PoolShard) -> int:
            return sum(1 for t in shard.fault_times if t >= horizon)

        shards = pool.shards
        best = max(coverage(shard) for shard in shards)
        capable = [s for s in shards if coverage(s) == best]
        healthy = [s for s in capable if recent_faults(s) < self.trip_threshold]
        best_name: str | None = None
        best_key: tuple[int, int] | None = None
        for shard in healthy or capable:
            key = (-recent_faults(shard), shard.free_vms + shard.free_sls)
            if best_key is None or key > best_key:
                best_name, best_key = shard.name, key
        assert best_name is not None  # pools always have >= 1 shard
        return best_name

    def describe(self) -> str:
        return (
            f"health-aware(window={self.window_s:g}s, "
            f"trip>={self.trip_threshold})"
        )


# ---------------------------------------------------------------------------
# Grant ordering
# ---------------------------------------------------------------------------


class GrantPolicy(abc.ABC):
    """Chooses which queued request a shard grants next."""

    @abc.abstractmethod
    def candidates(
        self, shard: PoolShard, pool: "ClusterPool"
    ) -> list[PoolLease]:
        """The shard's grant-eligible queued leases, in preference order.

        Only these leases may be granted next -- by the shard itself or
        by a stealing shard -- so the ordering guarantees a policy makes
        (e.g. FIFO's arrival order) survive work stealing.
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable policy name for reports."""

    def select(self, shard: PoolShard, pool: "ClusterPool") -> PoolLease | None:
        """The next queued lease grantable on ``shard`` (None when stuck)."""
        for lease in self.candidates(shard, pool):
            if not shard.fits(lease):
                pool._note_capacity_block(lease)
                continue
            if not pool.quota_allows(lease):
                pool._note_quota_block(lease)
                continue
            return lease
        return None


class FifoGrant(GrantPolicy):
    """Plain arrival order with head-of-line blocking (the classic queue).

    The head request blocks everything behind it -- including other
    tenants -- until capacity *and* its tenant's quota allow the grant.
    This is the pre-multi-tenant behaviour and the noisy-neighbour
    baseline the fair policy is measured against.
    """

    def candidates(
        self, shard: PoolShard, pool: "ClusterPool"
    ) -> list[PoolLease]:
        return shard.queue[:1]

    def describe(self) -> str:
        return "fifo"


class WeightedFairGrant(GrantPolicy):
    """Least weight-normalised service first (start-time fair queueing).

    Each tenant's candidate is its earliest queued request (FIFO *within*
    a tenant, so a single-tenant pool behaves exactly like
    :class:`FifoGrant`); among tenants whose candidate fits the shard and
    clears its quota, the one that has consumed the least service per
    unit weight wins, ties broken by arrival order.  Service is the
    worker count granted so far, so a hot tenant that just burned through
    the pool yields to a quiet one even under a standing backlog.
    """

    def candidates(
        self, shard: PoolShard, pool: "ClusterPool"
    ) -> list[PoolLease]:
        heads: dict[str, PoolLease] = {}
        for lease in shard.queue:  # arrival order => first seen is the head
            heads.setdefault(lease.tenant, lease)
        return sorted(
            heads.values(),
            key=lambda lease: (
                pool.normalized_service(lease.tenant), lease.seq
            ),
        )

    def describe(self) -> str:
        return "weighted-fair"


class DeadlineAwareGrant(GrantPolicy):
    """Least remaining SLO slack first (earliest-deadline-first grants).

    Queued requests are ordered by ``deadline - now``: the request
    closest to missing its SLO is granted first.  Requests without a
    deadline (no tenant SLO) sort at infinite slack, i.e. behind every
    deadlined request, in arrival order among themselves -- so with all
    SLOs unset the candidate order degenerates to exact arrival order
    and grants replay identically to a single-tenant FIFO.

    With ``preempt=True`` the policy additionally authorises cooperative
    preemption: when a deadlined request's slack falls below
    ``preempt_slack_s`` and its shard cannot fit it, the pool may
    checkpoint-and-requeue a *batch-tier* granted lease whose holder
    registered an :attr:`PoolLease.on_preempt` hook, freeing capacity
    for the urgent request.  The victim's spend so far is forfeited into
    the pool's ``wasted_cost`` ledger exactly like a fault revocation,
    but the shard's health meter is left untouched (a preemption is a
    policy decision, not a fault).
    """

    def __init__(
        self, preempt: bool = False, preempt_slack_s: float = 0.0
    ) -> None:
        if preempt_slack_s < 0.0:
            raise ValueError("preempt_slack_s must be non-negative")
        self.preempt = preempt
        self.preempt_slack_s = preempt_slack_s

    def candidates(
        self, shard: PoolShard, pool: "ClusterPool"
    ) -> list[PoolLease]:
        now = pool.simulator.now
        return sorted(
            shard.queue,
            key=lambda lease: (lease.slack_s(now), lease.seq),
        )

    def describe(self) -> str:
        if self.preempt:
            return (
                f"deadline-aware(preempt, slack<{self.preempt_slack_s:g}s)"
            )
        return "deadline-aware"


class ClusterPool:
    """Owns VM/SL instances across query lifetimes.

    Parameters
    ----------
    simulator:
        The (possibly shared) discrete-event core; boots, keep-alive
        expiries and queued grants are all events on its heap.
    provider / prices:
        Cold-boot latencies and billing rates.
    config:
        Capacity and warm-start parameters of the (single) default shard.
    autoscaler:
        Keep-alive policy; defaults to :class:`FixedKeepAlive` built from
        the config's windows (i.e. a cold pool with the default config).
    shard_autoscalers:
        Optional per-shard policy overrides ``{shard_name: policy}``;
        shards not named fall back to ``autoscaler``.  This is how a hot
        family's shard can run a predictive policy while a batch shard
        stays cold, each driven by its own arrival meter.
    shards:
        Optional explicit partitioning: ``{shard_name: PoolConfig}``.
        When given, per-shard configs govern capacity and warm-boot
        latencies and ``config`` only seeds the default autoscaler
        windows; when omitted the pool is one shard named ``"default"``.
    router:
        Shard placement policy (default :class:`LeastLoadedRouter`, which
        is trivial for a single shard).
    tenants:
        Quota/weight registry; defaults to a permissive registry where
        every tenant is unlimited with weight 1.
    grant_policy:
        Queue ordering (default :class:`WeightedFairGrant`, which is
        exactly FIFO while only one tenant is active).
    work_stealing:
        Whether idle shards may grant requests queued on other shards.
    fault_injector:
        Optional seeded :class:`~repro.cloud.faults.FaultInjector`; when
        given, hand-overs arm its fault schedule and injected kills flow
        back through :meth:`kill_instance`.  ``None`` (the default) is
        the fault-free pool, bit-for-bit identical to pre-fault
        behaviour.
    """

    def __init__(
        self,
        simulator: Simulator,
        provider: ProviderProfile,
        prices: PriceBook,
        config: PoolConfig | None = None,
        autoscaler: AutoscalerPolicy | None = None,
        shards: dict[str, PoolConfig] | None = None,
        router: ShardRouter | None = None,
        tenants: TenantRegistry | None = None,
        grant_policy: GrantPolicy | None = None,
        work_stealing: bool = True,
        shard_autoscalers: dict[str, AutoscalerPolicy] | None = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self.simulator = simulator
        self.provider = provider
        self.prices = prices
        self.config = config or PoolConfig()
        self.autoscaler = autoscaler or FixedKeepAlive(
            self.config.vm_keep_alive_s, self.config.sl_keep_alive_s
        )
        if shards:
            self._shards = {
                name: PoolShard(name, shard_config)
                for name, shard_config in shards.items()
            }
        else:
            self._shards = {"default": PoolShard("default", self.config)}
        for name, policy in (shard_autoscalers or {}).items():
            if name not in self._shards:
                raise ValueError(
                    f"shard_autoscalers names unknown shard {name!r} "
                    f"(shards: {', '.join(self._shards)})"
                )
            self._shards[name].autoscaler = policy
        self.router = router or LeastLoadedRouter()
        self.tenants = tenants or TenantRegistry()
        self.grant_policy = grant_policy or WeightedFairGrant()
        self.work_stealing = work_stealing
        self.fault_injector = fault_injector
        self.stats = PoolStats()
        self.keepalive_cost = CostBreakdown()
        self.wasted_cost = CostBreakdown()
        #: Idle spend attributable to plan-driven pre-warming (the boot
        #: interval plus the park until first hand-over or expiry).  A
        #: sub-ledger of ``keepalive_cost`` -- the chargeback identity is
        #: unchanged; this makes the planner's speculative spend visible.
        self.prewarm_cost = CostBreakdown()
        #: Pre-booting workers (plan-driven) that have not reached their
        #: warm set yet: instance id -> (instance, destination shard).
        self._prewarming: dict[str, tuple[Instance, PoolShard]] = {}
        #: Ids whose *first* idle interval should bill to ``prewarm_cost``.
        self._prewarmed_ids: set[str] = set()
        # Pool-wide leased counters, maintained incrementally alongside
        # the per-shard ones (``leased_vms`` sums shards semantically;
        # the running totals avoid the per-grant shard scan).
        self._leased_vms_total = 0
        self._leased_sls_total = 0
        #: Live reverse map: instance id -> the lease holding it.
        self._lease_by_instance: dict[str, PoolLease] = {}
        self._idle_since: dict[str, float] = {}
        self._expiry_handles: dict[str, EventHandle] = {}
        self._grant_times: collections.deque[float] = collections.deque()
        # Per-tenant accounting: currently leased (vms, sls), the peak of
        # that pair over the simulation, and total workers granted (the
        # service the fair policy normalises by weight).
        self._tenant_leased: dict[str, tuple[int, int]] = {}
        self._tenant_peaks: dict[str, tuple[int, int]] = {}
        self._tenant_service: dict[str, float] = {}
        # Re-entrancy guard for _pump: a cooperative preemption revokes a
        # lease *inside* the pump loop, and revoke_lease (and the
        # victim's synchronous re-acquire) call _pump again; the nested
        # calls just flag the outer loop to run another pass.
        self._pumping = False
        self._pump_again = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[PoolShard, ...]:
        return tuple(self._shards.values())

    @property
    def shard_names(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def shard(self, name: str) -> PoolShard:
        return self._shards[name]

    @property
    def leased_vms(self) -> int:
        return self._leased_vms_total

    @property
    def leased_sls(self) -> int:
        return self._leased_sls_total

    @property
    def warm_vms(self) -> int:
        return sum(shard.warm_vms for shard in self._shards.values())

    @property
    def warm_sls(self) -> int:
        return sum(shard.warm_sls for shard in self._shards.values())

    @property
    def pending_requests(self) -> int:
        return sum(len(shard.queue) for shard in self._shards.values())

    @property
    def keepalive_cost_dollars(self) -> float:
        return self.keepalive_cost.total

    @property
    def keepalive_cost_by_shard(self) -> dict[str, float]:
        """Idle warm spend per shard (sums to the pool's keep-alive cost)."""
        return {
            name: shard.keepalive_cost.total
            for name, shard in self._shards.items()
        }

    @property
    def prewarm_cost_dollars(self) -> float:
        """Idle spend of plan-driven pre-warming (within keep-alive)."""
        return self.prewarm_cost.total

    @property
    def wasted_cost_dollars(self) -> float:
        """Leased spend forfeited by fault revocations (0 without faults)."""
        return self.wasted_cost.total

    @property
    def wasted_cost_by_shard(self) -> dict[str, float]:
        """Forfeited spend per shard (sums to the pool's wasted cost)."""
        return {
            name: shard.wasted_cost.total
            for name, shard in self._shards.items()
        }

    def recent_shard_faults(self, window_s: float) -> dict[str, int]:
        """Injected kills per shard over the trailing ``window_s``."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        horizon = self.simulator.now - window_s
        return {
            name: sum(1 for t in shard.fault_times if t >= horizon)
            for name, shard in self._shards.items()
        }

    def runtime_factor(self, instance: Instance) -> float:
        """Task-duration multiplier for ``instance`` (straggler model)."""
        if self.fault_injector is None:
            return 1.0
        return self.fault_injector.runtime_factor(instance)

    def autoscaler_for(self, shard: PoolShard) -> AutoscalerPolicy:
        """The keep-alive policy governing one shard's releases."""
        return shard.autoscaler or self.autoscaler

    def tenant_leased(self, tenant: str) -> tuple[int, int]:
        """The tenant's currently leased ``(vms, sls)``."""
        return self._tenant_leased.get(tenant, (0, 0))

    @property
    def tenant_peaks(self) -> dict[str, tuple[int, int]]:
        """Peak concurrently leased ``(vms, sls)`` seen per tenant."""
        return dict(self._tenant_peaks)

    def normalized_service(self, tenant: str) -> float:
        """Workers granted to the tenant so far, divided by its weight."""
        return (
            self._tenant_service.get(tenant, 0.0)
            / self.tenants.weight(tenant)
        )

    def quota_allows(self, lease: PoolLease) -> bool:
        """Whether granting the lease keeps its tenant within quota."""
        spec = self.tenants.get(lease.tenant)
        if spec.max_leased_vms is None and spec.max_leased_sls is None:
            return True
        vm_used, sl_used = self.tenant_leased(lease.tenant)
        if (
            spec.max_leased_vms is not None
            and vm_used + lease.n_vm > spec.max_leased_vms
        ):
            return False
        if (
            spec.max_leased_sls is not None
            and sl_used + lease.n_sl > spec.max_leased_sls
        ):
            return False
        return True

    def recent_acquire_rate(
        self, window_s: float, shard: str | None = None
    ) -> float:
        """Lease grants per second over the trailing ``window_s``.

        With ``shard`` given, only grants served *by that shard* count --
        the per-shard arrival meter autoscalers scale each shard on.
        Non-destructive: the grant history is only pruned beyond a fixed
        retention horizon, so introspection calls with a small window
        cannot perturb an autoscaler watching a larger one.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if shard is None:
            times = self._grant_times
        else:
            if shard not in self._shards:
                raise ValueError(
                    f"unknown shard {shard!r} "
                    f"(shards: {', '.join(self._shards)})"
                )
            times = self._shards[shard].grant_times
        retention = self.simulator.now - _GRANT_HISTORY_RETENTION_S
        while times and times[0] < retention:
            times.popleft()
        horizon = self.simulator.now - window_s
        count = sum(1 for t in times if t >= horizon)
        return count / window_s

    def describe(self) -> str:
        if len(self._shards) == 1:
            shard = next(iter(self._shards.values()))
            capacity = f"max={shard.config.max_vms}VM+{shard.config.max_sls}SL"
        else:
            capacity = (
                f"{len(self._shards)} shards "
                f"[{', '.join(self._shards)}], {self.router.describe()}"
            )
        autoscaling = self.autoscaler.describe()
        overridden = [
            shard.name
            for shard in self._shards.values()
            if shard.autoscaler is not None
        ]
        if overridden:
            autoscaling += f" + per-shard overrides [{', '.join(overridden)}]"
        return (
            f"ClusterPool({capacity}, {self.grant_policy.describe()} grants, "
            f"{autoscaling})"
        )

    # ------------------------------------------------------------------
    # Acquire
    # ------------------------------------------------------------------

    def acquire(
        self,
        n_vm: int,
        n_sl: int,
        on_instance_ready: Callable[[Instance, bool], None],
        on_granted: Callable[[PoolLease], None] | None = None,
        tenant: str = DEFAULT_TENANT,
        deadline_s: float | None = None,
    ) -> PoolLease:
        """Request ``n_vm`` VMs plus ``n_sl`` SLs for one query.

        The request is routed to a shard and clamped to the smaller of
        the shard's capacity and the tenant's quota.  When the shard has
        no backlog, free capacity and quota headroom, the lease is
        granted synchronously; otherwise it queues on the shard and is
        granted by the pool's :class:`GrantPolicy` (or stolen by an idle
        shard) as capacity frees up.  Per ready worker,
        ``on_instance_ready(instance, warm)`` fires after the (warm or
        cold) boot; ``on_granted(lease)`` fires once at grant time, after
        the lease's instance lists are filled.

        ``deadline_s`` is the absolute SLO deadline the request races
        (used by :class:`DeadlineAwareGrant`); when ``None`` and the
        tenant's spec carries ``slo_latency_s``, the deadline defaults to
        ``now + slo_latency_s``.  Callers that know the query's true
        arrival time (the serving layer, where admission and batching
        delays precede the pool request) pass it explicitly.
        """
        if n_vm < 0 or n_sl < 0:
            raise ValueError("instance counts must be non-negative")
        if n_vm + n_sl == 0:
            raise ValueError("at least one instance is required")
        spec = self.tenants.get(tenant)
        shard = self._shards[self.router.route(n_vm, n_sl, tenant, self)]
        return self._acquire_on(
            shard, spec, n_vm, n_sl, on_instance_ready, on_granted, tenant,
            deadline_s,
        )

    def acquire_many(
        self,
        requests: "list[tuple]",
    ) -> list[PoolLease]:
        """Grant a whole group's leases in one pass over shard state.

        ``requests`` is a list of ``(n_vm, n_sl, on_instance_ready,
        on_granted, tenant)`` tuples -- optionally with a sixth element,
        the absolute ``deadline_s`` -- processed in order with semantics
        identical to sequential :meth:`acquire` calls -- grant-policy
        ordering, quotas, work stealing and fault arming are all
        event-exact, since each grant/queue decision observes the pool
        state left by the previous one.  What the batch saves is the
        per-request routing and tenant-spec lookups: with a single shard
        the router is consulted once, and tenant specs are resolved once
        per distinct tenant.  The vectorized submission core leases each
        sizing group through this in one call.
        """
        single: PoolShard | None = None
        if len(self._shards) == 1:
            single = next(iter(self._shards.values()))
        specs: dict[str, TenantSpec] = {}
        leases: list[PoolLease] = []
        for request in requests:
            if len(request) == 5:
                n_vm, n_sl, on_instance_ready, on_granted, tenant = request
                deadline_s = None
            else:
                (n_vm, n_sl, on_instance_ready, on_granted, tenant,
                 deadline_s) = request
            if n_vm < 0 or n_sl < 0:
                raise ValueError("instance counts must be non-negative")
            if n_vm + n_sl == 0:
                raise ValueError("at least one instance is required")
            spec = specs.get(tenant)
            if spec is None:
                spec = specs[tenant] = self.tenants.get(tenant)
            if single is not None:
                shard = single
            else:
                shard = self._shards[
                    self.router.route(n_vm, n_sl, tenant, self)
                ]
            leases.append(
                self._acquire_on(
                    shard, spec, n_vm, n_sl, on_instance_ready,
                    on_granted, tenant, deadline_s,
                )
            )
        return leases

    def _acquire_on(
        self,
        shard: PoolShard,
        spec: "TenantSpec",
        n_vm: int,
        n_sl: int,
        on_instance_ready: Callable[[Instance, bool], None],
        on_granted: Callable[[PoolLease], None] | None,
        tenant: str,
        deadline_s: float | None = None,
    ) -> PoolLease:
        clamped_vm = min(n_vm, shard.config.max_vms)
        clamped_sl = min(n_sl, shard.config.max_sls)
        if spec.max_leased_vms is not None:
            clamped_vm = min(clamped_vm, spec.max_leased_vms)
        if spec.max_leased_sls is not None:
            clamped_sl = min(clamped_sl, spec.max_leased_sls)
        if clamped_vm + clamped_sl == 0:
            raise ValueError(
                f"shard {shard.name!r} has no capacity (or tenant "
                f"{tenant!r} no quota) for a ({n_vm} VM, {n_sl} SL) "
                f"request (shard max {shard.config.max_vms} VM, "
                f"{shard.config.max_sls} SL)"
            )
        if deadline_s is None and spec.slo_latency_s is not None:
            deadline_s = self.simulator.now + spec.slo_latency_s
        lease = PoolLease(
            n_vm=clamped_vm,
            n_sl=clamped_sl,
            requested_at=self.simulator.now,
            on_instance_ready=on_instance_ready,
            on_granted=on_granted,
            requested_vm=n_vm,
            requested_sl=n_sl,
            tenant=tenant,
            deadline_s=deadline_s,
            tier=spec.tier,
        )
        lease.shard = shard.name
        if not shard.queue and shard.fits(lease) and self.quota_allows(lease):
            self._grant(lease, shard)
        else:
            if shard.fits(lease) and not self.quota_allows(lease):
                self._note_quota_block(lease)
            shard.queue.append(lease)
            # Another shard may be able to serve the request right away
            # (work stealing); only count the lease as queued when it is
            # still waiting after that, so leases_queued keeps meaning
            # "waited for a later event".
            self._pump()
            if not lease.is_granted:
                self.stats.leases_queued += 1
        return lease

    def _note_quota_block(self, lease: PoolLease) -> None:
        """Record that the lease is waiting on quota, not capacity.

        Interval-exactness audit: ``quota_blocked_since`` is stamped only
        when no interval is open (``None``), and both closers
        (:meth:`_note_capacity_block` and :meth:`_grant`) add the open
        interval to ``quota_delay_s`` exactly once and clear the stamp in
        the same step -- so a lease that blocks, unblocks and re-blocks
        accumulates each blocked interval exactly once, never twice.
        Re-noting an already-open block at a later timestamp is a no-op
        by design: the interval start must stay the *first* instant the
        lease was found quota-blocked.
        """
        if lease.quota_blocked_since is None:
            lease.quota_blocked_since = self.simulator.now
        if not lease._quota_ever_blocked:
            lease._quota_ever_blocked = True
            self.stats.quota_deferrals += 1

    def _note_capacity_block(self, lease: PoolLease) -> None:
        """Close an open quota-blocked interval: capacity ran out again,
        so the wait from here on is contention, not the quota."""
        if lease.quota_blocked_since is not None:
            lease.quota_delay_s += (
                self.simulator.now - lease.quota_blocked_since
            )
            lease.quota_blocked_since = None

    def _grant(self, lease: PoolLease, shard: PoolShard) -> None:
        now = self.simulator.now
        lease.granted_at = now
        lease.shard = shard.name
        if lease.quota_blocked_since is not None:
            lease.quota_delay_s += now - lease.quota_blocked_since
            lease.quota_blocked_since = None
        self.stats.leases_granted += 1
        # Append-side pruning keeps the meters bounded even under
        # policies that never read the rate (fixed, predictive).
        retention = now - _GRANT_HISTORY_RETENTION_S
        for times in (self._grant_times, shard.grant_times):
            while times and times[0] < retention:
                times.popleft()
            times.append(now)
        n_vm = lease.n_vm
        n_sl = lease.n_sl
        for _ in range(n_vm):
            lease.vms.append(self._hand_over(lease, InstanceKind.VM, shard))
        for _ in range(n_sl):
            lease.sls.append(
                self._hand_over(lease, InstanceKind.SERVERLESS, shard)
            )
        shard.leased_vms += n_vm
        shard.leased_sls += n_sl
        self._leased_vms_total += n_vm
        self._leased_sls_total += n_sl
        tenant = lease.tenant
        vm_used, sl_used = self._tenant_leased.get(tenant, (0, 0))
        vm_used += n_vm
        sl_used += n_sl
        self._tenant_leased[tenant] = (vm_used, sl_used)
        peak_vm, peak_sl = self._tenant_peaks.get(tenant, (0, 0))
        if vm_used > peak_vm:
            peak_vm = vm_used
        if sl_used > peak_sl:
            peak_sl = sl_used
        self._tenant_peaks[tenant] = (peak_vm, peak_sl)
        self._tenant_service[tenant] = (
            self._tenant_service.get(tenant, 0.0) + n_vm + n_sl
        )
        stats = self.stats
        if self._leased_vms_total > stats.peak_leased_vms:
            stats.peak_leased_vms = self._leased_vms_total
        if self._leased_sls_total > stats.peak_leased_sls:
            stats.peak_leased_sls = self._leased_sls_total
        if lease.on_granted is not None:
            lease.on_granted(lease)

    def _hand_over(
        self, lease: PoolLease, kind: InstanceKind, shard: PoolShard
    ) -> Instance:
        """Reuse a warm instance (LIFO, warmest first) or spawn cold."""
        now = self.simulator.now
        warm_set = shard.warm[kind]
        if warm_set:
            _, instance = warm_set.popitem()
            self._end_idle(instance, now, shard)
            self.stats.warm_starts += 1
            cold = False
            boot = (
                shard.config.warm_vm_boot_s
                if kind is InstanceKind.VM
                else shard.config.warm_sl_boot_s
            )
        else:
            if kind is InstanceKind.VM:
                instance = VMInstance.create(spawn_time=now)
                boot = self.provider.vm_boot_seconds
            else:
                instance = ServerlessInstance.create(spawn_time=now)
                boot = self.provider.sl_boot_seconds
            instance.transition(InstanceState.BOOTING, now)
            self.stats.cold_starts += 1
            cold = True
        segment = _OpenSegment(
            instance=instance,
            start=now,
            cold=cold,
            tasks_at_open=instance.tasks_executed,
        )
        lease._open[instance.instance_id] = segment
        self._lease_by_instance[instance.instance_id] = lease
        if lease.on_instance_ready is None and not cold:
            # A warm worker for an eventless holder (compiled plan
            # runner): the instance is already RUNNING and nothing
            # observes the hand-over instant, so skip the boot event
            # and record its would-be fire time for
            # ``scheduled_ready_time``.  Cold boots keep the event --
            # it owns the BOOTING->RUNNING transition.
            segment.ready_at = now + boot
        else:
            segment.boot_handle = self.simulator.schedule(
                boot, lambda: self._finish_boot(lease, segment)
            )
        if self.fault_injector is not None and self.fault_injector.active:
            self.fault_injector.on_hand_over(
                self, lease, shard, instance, cold, boot
            )
        return instance

    def _finish_boot(self, lease: PoolLease, segment: _OpenSegment) -> None:
        instance = segment.instance
        if not lease.is_active(instance):
            return  # released (or the query completed) before hand-over
        if instance.state is InstanceState.BOOTING:
            instance.transition(InstanceState.RUNNING, self.simulator.now)
        if lease.on_instance_ready is not None:
            lease.on_instance_ready(instance, not segment.cold)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release_instance(self, lease: PoolLease, instance: Instance) -> None:
        """Return one worker to the pool and close its billing segment."""
        segment = lease._open.pop(instance.instance_id, None)
        if segment is None:
            raise ValueError(
                f"{instance.instance_id} is not leased by {lease.lease_id}"
            )
        assert lease.shard is not None
        shard = self._shards[lease.shard]
        now = self.simulator.now
        self._lease_by_instance.pop(instance.instance_id, None)
        if segment.boot_handle is not None:
            self.simulator.cancel(segment.boot_handle)
        lease.segments.append(
            BillingSegment(
                kind=instance.kind,
                start=segment.start,
                end=now,
                cold=segment.cold,
                tasks_executed=instance.tasks_executed - segment.tasks_at_open,
            )
        )
        self.stats.leased_seconds += now - segment.start
        vm_used, sl_used = self.tenant_leased(lease.tenant)
        if instance.kind is InstanceKind.VM:
            shard.leased_vms -= 1
            self._leased_vms_total -= 1
            vm_used -= 1
        else:
            shard.leased_sls -= 1
            self._leased_sls_total -= 1
            sl_used -= 1
        self._tenant_leased[lease.tenant] = (vm_used, sl_used)

        if instance.state is InstanceState.BOOTING:
            # Released before the cold boot completed -- a half-booted
            # executor cannot be parked.  (A *warm* instance released
            # mid-re-attach is RUNNING and stays eligible for parking;
            # its stale hand-over event no-ops via the lease guard.)
            self._terminate(instance, now)
        else:
            policy = self.autoscaler_for(shard)
            keep_alive = policy.keep_alive(instance.kind, self, shard)
            if keep_alive > 0.0:
                self._park(instance, keep_alive, now, shard)
            else:
                self._terminate(instance, now)
        self._pump()

    def release(self, lease: PoolLease) -> None:
        """Release every worker the lease still holds.

        The holder is done with the lease, so it stops being a
        cooperative-preemption target *before* any capacity frees up:
        each ``release_instance`` pumps the grant queue, and a pump
        mid-teardown must not pick this very lease as a victim (its
        attempt has nothing left to checkpoint, and revoking it would
        forfeit a finished query's spend as wasted).
        """
        lease.on_preempt = None
        for instance in list(lease.active_instances):
            if lease.is_active(instance):
                self.release_instance(lease, instance)

    def cancel_pending_boot(self, lease: PoolLease, instance: Instance) -> None:
        """Cancel an instance's not-yet-fired boot event.

        Used by compiled plan runners for workers whose computed release
        precedes (or exactly ties) their own boot: cancelling at grant
        time guarantees the release observes a still-BOOTING instance,
        matching the event engine's retire-before-hand-over ordering
        even when both land on the same timestamp.  Harmless if the
        handle already fired or was cancelled.
        """
        segment = lease._open.get(instance.instance_id)
        if segment is not None and segment.boot_handle is not None:
            self.simulator.cancel(segment.boot_handle)

    # ------------------------------------------------------------------
    # Epoch planning
    # ------------------------------------------------------------------

    def apply_plan(self, plan: "PoolPlan") -> None:
        """Re-shape the pool to a :class:`~repro.core.epochs.PoolPlan`.

        Applied at epoch boundaries by the serving loop.  Safety
        contract, regardless of what the plan asks for:

        - **Leased workers are never killed.**  A shrink target below a
          shard's currently leased count is clamped up to it; capacity
          drains as leases release (their grants simply stop).
        - **A worker kind a shard supports stays servable.**  Targets
          are floored at one worker for any kind with nonzero baseline
          capacity, so in-flight request shapes cannot be stranded.
        - **Quotas are untouched.**  Pre-boots are tenant-less and grant
          admission still runs through :meth:`quota_allows`; growing
          capacity never lets a tenant exceed its quota.
        - **Pre-boots bill to the keep-alive ledger** (and the
          ``prewarm_cost`` sub-ledger): their boot interval is *idle*
          time, so the time-conservation ledger still balances.

        Warm workers parked beyond a shrunken capacity are expired
        immediately (their idle spend accrues as usual).  Pre-warm
        requests are clamped to the shard's free headroom (capacity
        minus leased, warm and already-booting pre-warms).
        """
        now = self.simulator.now
        for name, (target_vms, target_sls) in sorted(
            plan.shard_capacity.items()
        ):
            shard = self._shard_for_plan(name)
            floor_vms = max(
                shard.leased_vms, 1 if shard.config.max_vms > 0 else 0
            )
            floor_sls = max(
                shard.leased_sls, 1 if shard.config.max_sls > 0 else 0
            )
            new_vms = max(int(target_vms), floor_vms)
            new_sls = max(int(target_sls), floor_sls)
            if (new_vms, new_sls) != (
                shard.config.max_vms, shard.config.max_sls
            ):
                shard.config = dataclasses.replace(
                    shard.config, max_vms=new_vms, max_sls=new_sls
                )
            for kind, leased, cap in (
                (InstanceKind.VM, shard.leased_vms, new_vms),
                (InstanceKind.SERVERLESS, shard.leased_sls, new_sls),
            ):
                warm_set = shard.warm[kind]
                excess = (
                    leased + len(warm_set)
                    + self._prewarming_count(shard, kind) - cap
                )
                while excess > 0 and warm_set:
                    # Evict coldest-first (insertion order): the LIFO
                    # warm set hands over from the other end.
                    oldest = next(iter(warm_set))
                    instance = warm_set.pop(oldest)
                    self._end_idle(instance, now, shard)
                    self._terminate(instance, now)
                    self.stats.expirations += 1
                    excess -= 1
        for name, (n_vm, n_sl) in sorted(plan.prewarm.items()):
            shard = self._shard_for_plan(name)
            keep_alive = float(plan.prewarm_keep_alive_s)
            if keep_alive <= 0.0:
                raise ValueError("prewarm_keep_alive_s must be positive")
            for kind, wanted in (
                (InstanceKind.VM, n_vm), (InstanceKind.SERVERLESS, n_sl)
            ):
                cap = (
                    shard.config.max_vms
                    if kind is InstanceKind.VM
                    else shard.config.max_sls
                )
                leased = (
                    shard.leased_vms
                    if kind is InstanceKind.VM
                    else shard.leased_sls
                )
                headroom = (
                    cap - leased - len(shard.warm[kind])
                    - self._prewarming_count(shard, kind)
                )
                for _ in range(min(int(wanted), max(headroom, 0))):
                    self._prewarm_one(kind, shard, keep_alive)
        if plan.grant_policy is not None:
            self.grant_policy = plan.grant_policy
        for name, policy in (plan.shard_autoscalers or {}).items():
            self._shard_for_plan(name).autoscaler = policy
        self._pump()

    def _shard_for_plan(self, name: str) -> PoolShard:
        shard = self._shards.get(name)
        if shard is None:
            raise ValueError(
                f"plan names unknown shard {name!r} "
                f"(shards: {', '.join(self._shards)})"
            )
        return shard

    def _prewarming_count(self, shard: PoolShard, kind: InstanceKind) -> int:
        return sum(
            1
            for instance, dest in self._prewarming.values()
            if dest is shard and instance.kind is kind
        )

    def _prewarm_one(
        self, kind: InstanceKind, shard: PoolShard, keep_alive: float
    ) -> None:
        """Cold-boot one worker straight into ``shard``'s warm set.

        The boot interval is stamped idle from spawn, so the whole
        speculative life bills to the keep-alive ledger (never a query)
        and the time-conservation ledger balances.  Not a cold start:
        acquisition counters track lease hand-overs only.
        """
        now = self.simulator.now
        if kind is InstanceKind.VM:
            instance: Instance = VMInstance.create(spawn_time=now)
            boot = self.provider.vm_boot_seconds
        else:
            instance = ServerlessInstance.create(spawn_time=now)
            boot = self.provider.sl_boot_seconds
        instance.transition(InstanceState.BOOTING, now)
        self.stats.prewarms += 1
        self._idle_since[instance.instance_id] = now
        self._prewarmed_ids.add(instance.instance_id)
        self._prewarming[instance.instance_id] = (instance, shard)
        self.simulator.schedule(
            boot, lambda: self._finish_prewarm(instance, shard, keep_alive)
        )

    def _finish_prewarm(
        self, instance: Instance, shard: PoolShard, keep_alive: float
    ) -> None:
        if self._prewarming.pop(instance.instance_id, None) is None:
            return  # killed or shut down before the boot completed
        now = self.simulator.now
        instance.transition(InstanceState.RUNNING, now)
        shard.warm[instance.kind][instance.instance_id] = instance
        # _idle_since keeps the spawn stamp: boot time bills as idle.
        self._expiry_handles[instance.instance_id] = self.simulator.schedule(
            keep_alive, lambda: self._expire(instance, shard)
        )

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------

    _FAULT_COUNTERS = {
        "preempted": "preemptions",
        "sl-fault": "sl_faults",
        "sl-timeout": "sl_timeouts",
        "boot-failure": "boot_failures",
    }

    def kill_instance(self, instance: Instance, reason: str) -> None:
        """An injected fault killed ``instance``; classify and account.

        A leased worker's death revokes the whole lease (the query
        attempt cannot complete on a partial worker set); a warm-parked
        worker is simply removed and terminated (a ``warm_kill``).
        Already-terminated instances are ignored, so stale kill events
        are harmless.
        """
        if instance.state is InstanceState.TERMINATED:
            return
        lease = self._lease_by_instance.get(instance.instance_id)
        if lease is not None and lease.is_active(instance):
            self.revoke_lease(lease, reason, dead_instance=instance)
            return
        now = self.simulator.now
        prewarming = self._prewarming.pop(instance.instance_id, None)
        if prewarming is not None:
            # A plan-driven pre-boot killed before reaching its warm set:
            # account like a warm kill (it was never leased).
            _, shard = prewarming
            self._end_idle(instance, now, shard)
            self._terminate(instance, now)
            self.stats.warm_kills += 1
            self._count_fault(reason)
            self._note_shard_fault(shard)
            return
        for shard in self._shards.values():
            if shard.warm[instance.kind].pop(
                instance.instance_id, None
            ) is not None:
                self._end_idle(instance, now, shard)
                self._terminate(instance, now)
                self.stats.warm_kills += 1
                self._count_fault(reason)
                self._note_shard_fault(shard)
                return
        # Neither leased nor warm (e.g. mid-release edge): terminate only.
        self._terminate(instance, now)
        self._count_fault(reason)

    def revoke_lease(
        self,
        lease: PoolLease,
        reason: str,
        dead_instance: Instance | None = None,
        note_fault: bool = True,
    ) -> None:
        """Tear a lease down mid-flight, forfeiting its spend.

        Every billing segment the attempt accumulated -- closed ones and
        the open partials cut at *now* -- moves into the pool's (and
        shard's) ``wasted_cost`` ledger instead of ever reaching a query
        bill; the time-conservation ledger still holds because the open
        partials accrue ``leased_seconds`` exactly as a clean release
        would.  ``dead_instance`` (the fault's victim) is terminated;
        surviving workers go back through the autoscaler like a normal
        release (the *workers* are fine -- the attempt is not).  The
        holder is told last, via ``lease.on_revoked(reason)``, after all
        pool state is consistent.

        ``note_fault=False`` skips the fault classification and the
        shard's health meter: a cooperative preemption forfeits spend
        through the same ledgers but is a scheduling decision, not a
        shard fault, so :class:`HealthAwareRouter` must not trip on it.
        """
        if not lease.is_granted or lease.revoked:
            return
        assert lease.shard is not None
        shard = self._shards[lease.shard]
        now = self.simulator.now
        lease.revoked = True
        forfeited = CostBreakdown()
        wasted_seconds = 0.0
        for segment in lease.segments:
            forfeited = forfeited + self._segment_cost(
                segment.kind, segment.seconds, segment.cold
            )
            wasted_seconds += segment.seconds
        lease.segments.clear()
        vm_used, sl_used = self.tenant_leased(lease.tenant)
        for open_segment in list(lease._open.values()):
            instance = open_segment.instance
            lease._open.pop(instance.instance_id, None)
            self._lease_by_instance.pop(instance.instance_id, None)
            if open_segment.boot_handle is not None:
                self.simulator.cancel(open_segment.boot_handle)
            held = now - open_segment.start
            self.stats.leased_seconds += held
            wasted_seconds += held
            forfeited = forfeited + self._segment_cost(
                instance.kind, held, open_segment.cold
            )
            if instance.kind is InstanceKind.VM:
                shard.leased_vms -= 1
                self._leased_vms_total -= 1
                vm_used -= 1
            else:
                shard.leased_sls -= 1
                self._leased_sls_total -= 1
                sl_used -= 1
            if (
                instance is dead_instance
                or instance.state is InstanceState.BOOTING
            ):
                # The victim, and any half-booted survivor (which cannot
                # be parked), terminate.
                self._terminate(instance, now)
            else:
                policy = self.autoscaler_for(shard)
                keep_alive = policy.keep_alive(instance.kind, self, shard)
                if keep_alive > 0.0:
                    self._park(instance, keep_alive, now, shard)
                else:
                    self._terminate(instance, now)
        self._tenant_leased[lease.tenant] = (vm_used, sl_used)
        lease.revoked_cost = forfeited
        self.wasted_cost.accrue(forfeited)
        shard.wasted_cost.accrue(forfeited)
        self.stats.wasted_seconds += wasted_seconds
        self.stats.leases_revoked += 1
        if note_fault:
            self._count_fault(reason)
            self._note_shard_fault(shard)
        if lease.on_revoked is not None:
            lease.on_revoked(reason)
        self._pump()

    def _segment_cost(
        self, kind: InstanceKind, seconds: float, cold: bool
    ) -> CostBreakdown:
        if kind is InstanceKind.VM:
            return self.prices.vm_breakdown(seconds)
        return self.prices.sl_breakdown(
            seconds, invocations=1 if cold else 0
        )

    def _count_fault(self, reason: str) -> None:
        counter = self._FAULT_COUNTERS.get(reason)
        if counter is not None:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def _note_shard_fault(self, shard: PoolShard) -> None:
        now = self.simulator.now
        times = shard.fault_times
        retention = now - _GRANT_HISTORY_RETENTION_S
        while times and times[0] < retention:
            times.popleft()
        times.append(now)

    def _park(
        self,
        instance: Instance,
        keep_alive: float,
        now: float,
        shard: PoolShard,
    ) -> None:
        shard.warm[instance.kind][instance.instance_id] = instance
        self._idle_since[instance.instance_id] = now
        self._expiry_handles[instance.instance_id] = self.simulator.schedule(
            keep_alive, lambda: self._expire(instance, shard)
        )

    def _expire(self, instance: Instance, shard: PoolShard) -> None:
        if shard.warm[instance.kind].pop(instance.instance_id, None) is None:
            return  # reused before the (stale) expiry fired
        now = self.simulator.now
        self._end_idle(instance, now, shard)
        self._terminate(instance, now)
        self.stats.expirations += 1

    def _end_idle(self, instance: Instance, now: float, shard: PoolShard) -> None:
        """Close an idle interval, accruing its keep-alive cost.

        The spend lands both on the pool total and on the shard the
        worker was parked on, so drained shards are auditable in
        isolation.
        """
        handle = self._expiry_handles.pop(instance.instance_id, None)
        if handle is not None:
            self.simulator.cancel(handle)
        idle_since = self._idle_since.pop(instance.instance_id, None)
        if idle_since is None:
            return
        idle = max(now - idle_since, 0.0)
        if instance.kind is InstanceKind.VM:
            idle_cost = self.prices.vm_breakdown(idle)
        else:
            idle_cost = self.prices.sl_breakdown(idle, invocations=0)
        self.keepalive_cost.accrue(idle_cost)
        shard.keepalive_cost.accrue(idle_cost)
        if instance.instance_id in self._prewarmed_ids:
            # First idle interval of a plan-driven pre-boot: also bill
            # the planner's speculative sub-ledger (once -- a later
            # re-park of the same worker is ordinary keep-alive).
            self._prewarmed_ids.discard(instance.instance_id)
            self.prewarm_cost.accrue(idle_cost)
        self.stats.idle_seconds += idle

    def _terminate(self, instance: Instance, now: float) -> None:
        if instance.state is not InstanceState.TERMINATED:
            instance.transition(InstanceState.TERMINATED, now)
            self.stats.instance_seconds += max(
                now - instance.spawn_time, 0.0
            )
            if self.fault_injector is not None:
                self.fault_injector.forget(instance)

    def _pump(self) -> None:
        """Grant queued requests while any shard can make progress.

        Re-entrant calls (a preemption's revoke, or a holder re-acquiring
        from inside its revocation callback) only flag the outer loop to
        run another full pass, so grant ordering stays a property of one
        loop rather than of the callback nesting.
        """
        if self._pumping:
            self._pump_again = True
            return
        self._pumping = True
        try:
            while True:
                self._pump_again = False
                self._pump_once()
                if not self._pump_again:
                    break
        finally:
            self._pumping = False

    def _pump_once(self) -> None:
        """One pump pass: grants, then work stealing, then preemption.

        Each round serves every shard's own queue through the grant
        policy, then lets shards with leftover free capacity steal queued
        requests homed elsewhere; rounds repeat until a full pass grants
        nothing.  Every grant consumes capacity, so the loop terminates.
        A preemption-enabled grant policy then gets one chance to evict
        a batch-tier lease for a deadline-pressed request that the round
        could not serve.
        """
        for shard in self._shards.values():
            if shard.queue:
                break
        else:
            return  # nothing queued anywhere: the common steady state
        progressed = True
        while progressed:
            progressed = False
            for shard in self._shards.values():
                while True:
                    lease = self.grant_policy.select(shard, self)
                    if lease is None:
                        break
                    shard.queue.remove(lease)
                    self._grant(lease, shard)
                    progressed = True
            if not self.work_stealing:
                continue
            for thief in self._shards.values():
                if thief.free_vms <= 0 and thief.free_sls <= 0:
                    continue
                lease = self._steal_candidate(thief)
                if lease is not None:
                    assert lease.shard is not None
                    self._shards[lease.shard].queue.remove(lease)
                    self.stats.work_steals += 1
                    self._grant(lease, thief)
                    progressed = True
        if getattr(self.grant_policy, "preempt", False):
            self._try_preempt()

    def _try_preempt(self) -> None:
        """Evict one batch-tier lease for a deadline-pressed request.

        For each shard, the most urgent queued request whose slack has
        fallen below the policy's ``preempt_slack_s`` is matched against
        the shard's granted leases: an eligible victim is batch-tier,
        cooperatively checkpointable (``on_preempt`` set), granted
        *before* this instant (a lease granted at the current timestamp
        cannot be re-evicted -- that would let grant/preempt cycles spin
        without time advancing), and large enough that revoking it lets
        the urgent request fit.  Among eligible victims the most
        recently granted wins -- it has the least sunk spend to forfeit.
        At most one victim is evicted per pump pass; the revoke re-pumps,
        and the freed capacity goes to the urgent request first because
        the deadline policy orders it ahead of any requeued victim.
        """
        now = self.simulator.now
        threshold = self.grant_policy.preempt_slack_s
        for shard in self._shards.values():
            if not shard.queue:
                continue
            urgent: PoolLease | None = None
            for lease in self.grant_policy.candidates(shard, self):
                if lease.slack_s(now) >= threshold:
                    break  # sorted by slack: nothing urgent follows
                if self.quota_allows(lease):
                    urgent = lease
                    break
            if urgent is None:
                continue
            victim: PoolLease | None = None
            for held in set(self._lease_by_instance.values()):
                if (
                    held.shard != shard.name
                    or held.tier != "batch"
                    or held.on_preempt is None
                    or held.revoked
                    or not held.is_granted
                    or held.granted_at >= now
                ):
                    continue
                vm_held = sl_held = 0
                for open_segment in held._open.values():
                    if open_segment.instance.kind is InstanceKind.VM:
                        vm_held += 1
                    else:
                        sl_held += 1
                if (
                    shard.free_vms + vm_held < urgent.n_vm
                    or shard.free_sls + sl_held < urgent.n_sl
                ):
                    continue
                if victim is None or (
                    (held.granted_at, held.seq)
                    > (victim.granted_at, victim.seq)
                ):
                    victim = held
            if victim is None:
                continue
            victim.preempted = True
            self.stats.coop_preemptions += 1
            victim.on_preempt("preempted-coop")
            self.revoke_lease(victim, "preempted-coop", note_fault=False)
            return

    def _steal_candidate(self, thief: PoolShard) -> PoolLease | None:
        """A grant-eligible request another shard holds that fits here.

        Only the victim's *policy candidates* may be stolen -- under
        FIFO that is its queue head alone -- so the grant ordering each
        policy guarantees survives work stealing instead of letting
        small late requests overtake a blocked head forever.
        """
        for shard in self._shards.values():
            if shard is thief:
                continue
            for lease in self.grant_policy.candidates(shard, self):
                if not thief.fits(lease):
                    continue
                if not self.quota_allows(lease):
                    self._note_quota_block(lease)
                    continue
                return lease
        return None

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate all warm instances (end of the serving day)."""
        now = self.simulator.now
        for instance, shard in list(self._prewarming.values()):
            # Pre-boots still in flight: their whole life was idle spend.
            self._end_idle(instance, now, shard)
            self._terminate(instance, now)
        self._prewarming.clear()
        for shard in self._shards.values():
            for warm_set in shard.warm.values():
                for instance in list(warm_set.values()):
                    self._end_idle(instance, now, shard)
                    self._terminate(instance, now)
                warm_set.clear()
