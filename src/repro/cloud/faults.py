"""Deterministic, seeded fault injection for the shared-cluster pool.

The simulated cloud was a fault-free fantasy: every boot succeeded and
every lease ran to completion.  Real serverless-enabled analytics lives
with transient invocation failures, spot/preemptible VM kills, boot
failures and stragglers -- the reliability tradeoff ServerMix calls out
as first-order for SL-heavy mixes.  This module supplies the substrate
the failure-aware layers above (lease revocation, retries, shard
health, load shedding) are built on.

Design constraints, in order:

1. **Determinism.**  Every fault decision is a pure hash of the plan's
   seed and *replay-local* entity identifiers -- the injector numbers
   instances in first-hand-over order and counts each instance's
   hand-overs, both deterministic functions of the replayed event
   sequence.  Raw instance ids and lease sequence numbers are
   deliberately NOT used: those come from process-global counters, so
   keying on them would make the second replay in a process draw a
   different fault schedule than the first.  Two replays of the same
   trace under the same plan inject byte-identical fault schedules, on
   either serving engine, in the same process or across processes.
2. **Zero-fault transparency.**  A plan with all rates at zero
   (:attr:`FaultPlan.is_zero`) schedules no events and draws no numbers,
   so a pool built without an injector -- or with a zero plan -- replays
   *bit-for-bit* identically to the pre-fault code.  Callers gate on
   ``is_zero`` and pass ``fault_injector=None`` through.
3. **Stale events must be inert.**  Kill events are scheduled at
   hand-over time but fire much later; by then the instance may have
   been released, re-leased, or terminated.  Per-lease faults guard on
   ``lease.is_active(instance)``; per-instance kills no-op on
   ``TERMINATED`` instances, and the pool cancels pending kill handles
   at termination via :meth:`FaultInjector.forget`.

The fault model:

==================  =====================================================
Fault               Behaviour
==================  =====================================================
SL failure          A handed-over SL dies mid-lease after a deterministic
                    fraction of ``sl_failure_delay_s`` -- the transient
                    invocation crash.  Probability ``sl_failure_rate``
                    per hand-over.
SL timeout          A handed-over SL is killed at ``sl_timeout_s`` into
                    the lease -- the provider's invocation time limit.
                    Probability ``sl_timeout_rate`` per hand-over.
VM preemption       A cold-spawned VM gets a spot-style TTL drawn from an
                    exponential with rate ``vm_preemptions_per_hour``;
                    armed once per instance lifetime, it can strike
                    mid-lease (revocation) or while parked warm (a
                    ``warm_kill``).
Boot failure        A cold spawn dies partway through its boot window.
                    Probability ``boot_failure_rate`` per cold spawn.
Straggler           A worker runs every task ``straggler_factor`` times
                    slower -- no kill, just inflation.  Probability
                    ``straggler_rate`` per instance.
==================  =====================================================
"""

from __future__ import annotations

import dataclasses
import math
import zlib
from typing import TYPE_CHECKING

from repro.cloud.instances import Instance, InstanceKind, InstanceState

if TYPE_CHECKING:  # avoid a runtime cloud <-> engine import cycle
    from repro.cloud.pool import ClusterPool, PoolLease, PoolShard
    from repro.engine.simulator import EventHandle

__all__ = ["FaultInjector", "FaultPlan"]

#: A boot failure strikes between 10% and 90% of the way through the
#: boot window -- never at the exact boundary, where it would race the
#: boot-completion event's ordering.
_BOOT_KILL_SPAN = (0.1, 0.8)


def _uniform(seed: int, *parts: object) -> float:
    """A deterministic uniform in (0, 1) keyed by seed and identifiers.

    CRC32 of the joined key, centred into the open interval -- stateless,
    so fault decisions do not depend on evaluation order and identical
    entities get identical draws across engines and replays.
    """
    key = f"{seed}|" + "|".join(str(part) for part in parts)
    return (zlib.crc32(key.encode("utf-8")) + 0.5) / 2**32


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """One seeded fault schedule (all rates default to zero = no faults).

    Attributes
    ----------
    seed:
        Hash seed; two plans differing only in seed inject independent
        fault schedules over the same trace.
    sl_failure_rate / sl_failure_delay_s:
        Per-hand-over probability that an SL dies mid-lease, and the
        window the death lands in (a deterministic fraction of it).
    sl_timeout_rate / sl_timeout_s:
        Per-hand-over probability that an SL hits the provider's
        invocation time limit, and that limit.
    vm_preemptions_per_hour:
        Exponential hazard of a spot-style VM kill, armed at cold spawn.
    boot_failure_rate:
        Per-cold-spawn probability the boot dies partway through.
    straggler_rate / straggler_factor:
        Per-instance probability of runtime inflation, and the factor.
    """

    seed: int = 0
    sl_failure_rate: float = 0.0
    sl_failure_delay_s: float = 10.0
    sl_timeout_rate: float = 0.0
    sl_timeout_s: float = 300.0
    vm_preemptions_per_hour: float = 0.0
    boot_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0

    def __post_init__(self) -> None:
        for name in ("sl_failure_rate", "sl_timeout_rate",
                     "boot_failure_rate", "straggler_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.sl_failure_rate + self.sl_timeout_rate > 1.0:
            raise ValueError(
                "sl_failure_rate + sl_timeout_rate must not exceed 1"
            )
        for name in ("sl_failure_delay_s", "sl_timeout_s",
                     "vm_preemptions_per_hour"):
            value = getattr(self, name)
            if not value >= 0.0 or value == float("inf"):
                raise ValueError(f"{name} must be finite and non-negative")
        if not self.straggler_factor >= 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @property
    def is_zero(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            self.sl_failure_rate == 0.0
            and self.sl_timeout_rate == 0.0
            and self.vm_preemptions_per_hour == 0.0
            and self.boot_failure_rate == 0.0
            and self.straggler_rate == 0.0
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.sl_failure_rate:
            parts.append(f"sl_fail={self.sl_failure_rate:g}")
        if self.sl_timeout_rate:
            parts.append(f"sl_timeout={self.sl_timeout_rate:g}")
        if self.vm_preemptions_per_hour:
            parts.append(f"preempt/h={self.vm_preemptions_per_hour:g}")
        if self.boot_failure_rate:
            parts.append(f"boot_fail={self.boot_failure_rate:g}")
        if self.straggler_rate:
            parts.append(
                f"stragglers={self.straggler_rate:g}"
                f"x{self.straggler_factor:g}"
            )
        return f"FaultPlan({', '.join(parts)})"


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s kills against one pool's clock.

    The pool calls :meth:`on_hand_over` whenever a worker is handed to a
    lease and :meth:`runtime_factor` when a task starts; kills flow back
    through :meth:`ClusterPool.kill_instance`, which classifies them as
    lease revocations or warm-set kills.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._simulator: "object | None" = None  # bound at first arm
        #: Instances whose preemption TTL is already armed (armed once
        #: per lifetime, at cold spawn).
        self._preemption_armed: set[str] = set()
        #: Pending kill handles per instance, cancelled at termination
        #: so long-TTL preemptions do not linger as heap tombstones.
        self._kill_handles: dict[str, list[EventHandle]] = {}
        #: Replay-local identity: instances numbered in first-hand-over
        #: order, and a per-instance hand-over count.  Hashing on these
        #: (never on the process-global instance/lease counters) keeps
        #: the fault schedule identical across replays in one process.
        self._ordinals: dict[str, int] = {}
        self._hand_overs: dict[str, int] = {}

    @property
    def active(self) -> bool:
        return not self.plan.is_zero

    def _ordinal(self, iid: str) -> int:
        ordinal = self._ordinals.get(iid)
        if ordinal is None:
            ordinal = len(self._ordinals)
            self._ordinals[iid] = ordinal
        return ordinal

    # ------------------------------------------------------------------
    # Hooks the pool calls
    # ------------------------------------------------------------------

    def on_hand_over(
        self,
        pool: "ClusterPool",
        lease: "PoolLease",
        shard: "PoolShard",
        instance: Instance,
        cold: bool,
        boot_s: float,
    ) -> None:
        """Arm this hand-over's faults (called by ``ClusterPool._hand_over``)."""
        plan = self.plan
        seed = plan.seed
        iid = instance.instance_id
        ordinal = self._ordinal(iid)
        hand_over = self._hand_overs.get(iid, 0)
        self._hand_overs[iid] = hand_over + 1
        if cold and plan.boot_failure_rate > 0.0:
            if _uniform(seed, "boot-fail", ordinal) < plan.boot_failure_rate:
                low, span = _BOOT_KILL_SPAN
                frac = low + span * _uniform(seed, "boot-when", ordinal)
                self._arm_kill(pool, instance, boot_s * frac, "boot-failure")
                # A dead boot needs no further faults.
                return
        if (
            instance.kind is InstanceKind.VM
            and cold
            and plan.vm_preemptions_per_hour > 0.0
            and iid not in self._preemption_armed
        ):
            self._preemption_armed.add(iid)
            hazard = plan.vm_preemptions_per_hour / 3600.0
            u = _uniform(seed, "preempt", ordinal)
            ttl = -math.log(1.0 - u) / hazard
            self._arm_kill(pool, instance, ttl, "preempted", lease=None)
        if instance.kind is InstanceKind.SERVERLESS:
            # Per hand-over, not per lifetime: a warm SL that served ten
            # leases had ten invocation opportunities to fail.
            u = _uniform(seed, "sl-fate", ordinal, hand_over)
            if plan.sl_failure_rate > 0.0 and u < plan.sl_failure_rate:
                delay = plan.sl_failure_delay_s * _uniform(
                    seed, "sl-when", ordinal, hand_over
                )
                self._arm_kill(pool, instance, delay, "sl-fault", lease=lease)
            elif (
                plan.sl_timeout_rate > 0.0
                and u < plan.sl_failure_rate + plan.sl_timeout_rate
            ):
                self._arm_kill(
                    pool, instance, plan.sl_timeout_s, "sl-timeout",
                    lease=lease,
                )

    def runtime_factor(self, instance: Instance) -> float:
        """Task-duration multiplier for ``instance`` (1.0 = healthy)."""
        plan = self.plan
        if plan.straggler_rate <= 0.0:
            return 1.0
        u = _uniform(
            plan.seed, "straggler", self._ordinal(instance.instance_id)
        )
        return plan.straggler_factor if u < plan.straggler_rate else 1.0

    def forget(self, instance: Instance) -> None:
        """Cancel the instance's pending kills (called at termination)."""
        handles = self._kill_handles.pop(instance.instance_id, None)
        if handles is None:
            return
        for handle in handles:
            self._simulator.cancel(handle)  # keeps the heap's dead count exact

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _arm_kill(
        self,
        pool: "ClusterPool",
        instance: Instance,
        delay: float,
        reason: str,
        lease: "PoolLease | None" = None,
    ) -> None:
        def fire() -> None:
            handles = self._kill_handles.get(instance.instance_id)
            if handles is not None and handle in handles:
                handles.remove(handle)
                if not handles:
                    del self._kill_handles[instance.instance_id]
            if instance.state is InstanceState.TERMINATED:
                return  # already gone; stale kill
            if lease is not None and not lease.is_active(instance):
                return  # per-lease fault outlived the lease
            pool.kill_instance(instance, reason)

        self._simulator = pool.simulator
        handle = pool.simulator.schedule(max(delay, 0.0), fire)
        self._kill_handles.setdefault(instance.instance_id, []).append(handle)
