"""Simulated public-cloud substrate.

The paper evaluates Smartpick on live AWS and GCP test-beds; offline we
substitute a simulated cloud calibrated against the paper's published
measurements (Tables 1 and 5):

- :mod:`repro.cloud.providers` -- provider performance profiles (boot
  latencies, compute/storage speed factors, variance) for AWS-like and
  GCP-like clouds, plus the sysbench-style microbenchmark that regenerates
  Table 5.
- :mod:`repro.cloud.pricing` -- the price book: per-second VM billing,
  burstable vCPU surcharges, block storage, serverless GB-seconds, and the
  external Redis host charged while serverless instances are alive.
- :mod:`repro.cloud.instances` -- VM / serverless instance lifecycle state
  machines with billing accumulators.
- :mod:`repro.cloud.resource_manager` -- the paper's per-query Resource
  Manager (RM): spawns and tracks instances, maintains the REQUEST-ID to
  INSTANCE-ID relay mapping, and produces per-query cost reports.  The
  engine now leases workers from the :class:`ClusterPool` instead; the RM
  remains as the faithful standalone model of the paper's component.
- :mod:`repro.cloud.pool` -- the shared-cluster :class:`ClusterPool`:
  warm instances kept alive across query lifetimes, capacity queueing
  under pluggable grant policies, and pluggable autoscaling run *per
  shard* (each :class:`PoolShard` owns its arrival meter, optional
  policy override and keep-alive cost ledger).  The forecast-driven
  :class:`~repro.core.forecast.PredictiveKeepAlive` policy lives in
  :mod:`repro.core.forecast`, next to the arrival forecaster that
  feeds it.
- :mod:`repro.cloud.storage` -- cloud object storage and external Redis
  bandwidth models.
- :mod:`repro.cloud.faults` -- deterministic, seeded fault injection
  (:class:`FaultPlan` / :class:`FaultInjector`): SL invocation failures
  and timeouts, spot-style VM preemptions, boot failures and
  stragglers, threaded through the pool as lease revocations with a
  ``wasted_cost`` ledger and per-shard health meters.
"""

from repro.cloud.faults import FaultInjector, FaultPlan
from repro.cloud.instances import (
    Instance,
    InstanceKind,
    InstanceState,
    ServerlessInstance,
    VMInstance,
)
from repro.cloud.pricing import CostBreakdown, PriceBook
from repro.cloud.providers import (
    AWS_PROFILE,
    GCP_PROFILE,
    MicrobenchmarkReport,
    ProviderProfile,
    get_provider,
    run_microbenchmark,
)
from repro.cloud.pool import (
    AutoscalerPolicy,
    ClusterPool,
    DemandAutoscaler,
    FifoGrant,
    FixedKeepAlive,
    GrantPolicy,
    HealthAwareRouter,
    LeastLoadedRouter,
    NoKeepAlive,
    PoolConfig,
    PoolLease,
    PoolShard,
    PoolStats,
    ShardRouter,
    TenantAffinityRouter,
    TenantRegistry,
    TenantSpec,
    WeightedFairGrant,
)
from repro.cloud.resource_manager import ResourceManager
from repro.cloud.storage import ExternalStore, ObjectStore

__all__ = [
    "AWS_PROFILE",
    "AutoscalerPolicy",
    "ClusterPool",
    "CostBreakdown",
    "DemandAutoscaler",
    "ExternalStore",
    "FaultInjector",
    "FaultPlan",
    "FifoGrant",
    "FixedKeepAlive",
    "GCP_PROFILE",
    "GrantPolicy",
    "HealthAwareRouter",
    "LeastLoadedRouter",
    "Instance",
    "InstanceKind",
    "InstanceState",
    "MicrobenchmarkReport",
    "NoKeepAlive",
    "ObjectStore",
    "PoolConfig",
    "PoolLease",
    "PoolShard",
    "PoolStats",
    "PriceBook",
    "ProviderProfile",
    "ResourceManager",
    "ServerlessInstance",
    "ShardRouter",
    "TenantAffinityRouter",
    "TenantRegistry",
    "TenantSpec",
    "VMInstance",
    "WeightedFairGrant",
    "get_provider",
    "run_microbenchmark",
]
