"""Cloud provider performance profiles.

Table 5 of the paper reports sysbench-style microbenchmarks for the two
evaluation clouds.  We encode those measurements directly and derive the
simulator's speed factors from them, so the simulated AWS/GCP relationship
matches the published one:

============================  =========  =========
measurement                   AWS        GCP
============================  =========  =========
Cloud storage (MiB/s)         117.53     51.64
VM I/O writes/s               771.06     764.14
VM I/O reads/s                1156.59    1146.21
Memory (1k-ops/s)             4675.66    4182.49
VM CPU (events/s)             1109.07    906.67
SL CPU (events/s)             811.13     714.87
============================  =========  =========

Other calibration points taken from the paper text:

- VM cold boot measured at 31-32 s on both clouds (Section 6.1); the
  motivating example of Section 2.2 uses the literature value of 55 s.
- SL boot < 100 ms (Table 1).
- SL task execution carries ~30 % overhead versus VM (Section 2.2, "based
  on experimental evidence as shown in Section 6.1") -- and indeed the SL/VM
  CPU ratio in Table 5 is 1109.07 / 811.13 = 1.37 on AWS.
- GCP shows visibly more run-to-run variance than AWS (Sections 6.1-6.2),
  reflected here in ``noise_sigma``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "ProviderProfile",
    "MicrobenchmarkReport",
    "AWS_PROFILE",
    "GCP_PROFILE",
    "get_provider",
    "run_microbenchmark",
]

# Reference point: all speed factors are expressed relative to an AWS VM.
_AWS_VM_CPU_EVENTS = 1109.07


@dataclasses.dataclass(frozen=True)
class ProviderProfile:
    """Performance characteristics of one cloud provider.

    Attributes
    ----------
    name:
        Short provider key (``"aws"`` or ``"gcp"``).
    vm_boot_seconds:
        Cold-boot latency of a VM instance (Section 6.1 measurement).
    sl_boot_seconds:
        Invocation latency of a serverless instance (< 100 ms, Table 1).
    storage_mib_per_s:
        Object-storage download bandwidth (Table 5, per reader).
    vm_io_writes_per_s / vm_io_reads_per_s:
        Local disk IOPS (Table 5).
    memory_kops_per_s:
        Memory benchmark (Table 5).
    vm_cpu_events_per_s / sl_cpu_events_per_s:
        Sysbench CPU scores (Table 5); these fix the compute speed factors.
    noise_sigma:
        Relative standard deviation of per-task duration noise.
    sl_has_local_scratch:
        GCP Functions have no ephemeral scratch beyond RAM (Section 6.1),
        which costs extra SL-side I/O latency.
    burstable_free:
        e2 bursting is free on GCP; t3 bursting costs extra on AWS.
    """

    name: str
    vm_boot_seconds: float
    sl_boot_seconds: float
    storage_mib_per_s: float
    vm_io_writes_per_s: float
    vm_io_reads_per_s: float
    memory_kops_per_s: float
    vm_cpu_events_per_s: float
    sl_cpu_events_per_s: float
    noise_sigma: float
    sl_has_local_scratch: bool
    burstable_free: bool

    @property
    def vm_compute_factor(self) -> float:
        """Task-duration multiplier on a VM (1.0 = AWS VM)."""
        return _AWS_VM_CPU_EVENTS / self.vm_cpu_events_per_s

    @property
    def sl_compute_factor(self) -> float:
        """Task-duration multiplier on a serverless instance."""
        factor = _AWS_VM_CPU_EVENTS / self.sl_cpu_events_per_s
        if not self.sl_has_local_scratch:
            # No ephemeral scratch: spill-over work rides on RAM/remote I/O.
            factor *= 1.05
        return factor

    @property
    def sl_overhead(self) -> float:
        """Relative SL-vs-VM slowdown on this provider (paper: ~30 %)."""
        return self.sl_compute_factor / self.vm_compute_factor - 1.0

    def with_boot_seconds(self, vm_boot_seconds: float) -> "ProviderProfile":
        """Copy of the profile with a different VM cold-boot latency.

        The motivating example (Fig. 1) uses the 55 s literature number
        while the evaluation uses the measured 31-32 s; this helper supports
        both without a second profile.
        """
        if vm_boot_seconds < 0:
            raise ValueError("vm_boot_seconds must be non-negative")
        return dataclasses.replace(self, vm_boot_seconds=vm_boot_seconds)

    def with_noise_sigma(self, noise_sigma: float) -> "ProviderProfile":
        """Copy of the profile with a different task-noise level."""
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        return dataclasses.replace(self, noise_sigma=noise_sigma)


AWS_PROFILE = ProviderProfile(
    name="aws",
    vm_boot_seconds=31.5,
    sl_boot_seconds=0.1,
    storage_mib_per_s=117.53,
    vm_io_writes_per_s=771.06,
    vm_io_reads_per_s=1156.59,
    memory_kops_per_s=4675.66,
    vm_cpu_events_per_s=1109.07,
    sl_cpu_events_per_s=811.13,
    noise_sigma=0.03,
    sl_has_local_scratch=True,
    burstable_free=False,
)

GCP_PROFILE = ProviderProfile(
    name="gcp",
    vm_boot_seconds=32.0,
    sl_boot_seconds=0.1,
    storage_mib_per_s=51.64,
    vm_io_writes_per_s=764.14,
    vm_io_reads_per_s=1146.21,
    memory_kops_per_s=4182.49,
    vm_cpu_events_per_s=906.67,
    sl_cpu_events_per_s=714.87,
    noise_sigma=0.09,
    sl_has_local_scratch=False,
    burstable_free=True,
)

_PROVIDERS = {profile.name: profile for profile in (AWS_PROFILE, GCP_PROFILE)}


def get_provider(name: str) -> ProviderProfile:
    """Look a provider profile up by name (case-insensitive)."""
    try:
        return _PROVIDERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown provider {name!r}; choose from {sorted(_PROVIDERS)}"
        ) from None


@dataclasses.dataclass(frozen=True)
class MicrobenchmarkReport:
    """One row of Table 5: measured performance of a provider."""

    provider: str
    cloud_storage_mib_s: float
    vm_io_writes_s: float
    vm_io_reads_s: float
    memory_kops_s: float
    vm_cpu_events_s: float
    sl_cpu_events_s: float

    def as_row(self) -> tuple[str, float, float, float, float, float, float]:
        return (
            self.provider.upper(),
            self.cloud_storage_mib_s,
            self.vm_io_writes_s,
            self.vm_io_reads_s,
            self.memory_kops_s,
            self.vm_cpu_events_s,
            self.sl_cpu_events_s,
        )


def run_microbenchmark(
    profile: ProviderProfile,
    n_trials: int = 10,
    rng: np.random.Generator | int | None = None,
) -> MicrobenchmarkReport:
    """Probe a (simulated) provider sysbench-style, as Section 6.1 does.

    Each trial samples the underlying hardware metric with the provider's
    noise; the report averages the trials, mirroring the paper's
    average-of-runs methodology.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be at least 1")
    generator = np.random.default_rng(rng)

    def probe(true_value: float) -> float:
        samples = true_value * (
            1.0 + generator.normal(0.0, profile.noise_sigma, size=n_trials)
        )
        return float(np.mean(np.maximum(samples, 0.0)))

    return MicrobenchmarkReport(
        provider=profile.name,
        cloud_storage_mib_s=probe(profile.storage_mib_per_s),
        vm_io_writes_s=probe(profile.vm_io_writes_per_s),
        vm_io_reads_s=probe(profile.vm_io_reads_per_s),
        memory_kops_s=probe(profile.memory_kops_per_s),
        vm_cpu_events_s=probe(profile.vm_cpu_events_per_s),
        sl_cpu_events_s=probe(profile.sl_cpu_events_per_s),
    )
