"""Cloud storage bandwidth models.

Two storage paths matter to the simulation:

- **Object storage** (S3 / GCP Storage): query input is read from here; the
  per-reader bandwidth comes straight from Table 5 (117.53 MiB/s AWS,
  51.64 MiB/s GCP), which is why identical queries run visibly slower on
  the simulated GCP, as the paper observes.
- **External store** (Redis on a t3.xlarge / e2-standard-4 host): SLs have
  no worker-to-worker network, so shuffle data transits this store
  (Section 2.1).  It adds per-access latency and is the hook for the
  external-storage cost the paper charges whenever SLs participate.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ObjectStore", "ExternalStore"]

_MIB = 1024.0 * 1024.0


@dataclasses.dataclass(frozen=True)
class ObjectStore:
    """Object storage with fixed per-reader bandwidth and request latency."""

    bandwidth_mib_per_s: float
    request_latency_s: float = 0.02

    def __post_init__(self) -> None:
        if self.bandwidth_mib_per_s <= 0:
            raise ValueError("bandwidth_mib_per_s must be positive")
        if self.request_latency_s < 0:
            raise ValueError("request_latency_s must be non-negative")

    def read_seconds(self, n_bytes: float) -> float:
        """Time for one reader to fetch ``n_bytes`` from the store."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return self.request_latency_s + n_bytes / (self.bandwidth_mib_per_s * _MIB)


@dataclasses.dataclass(frozen=True)
class ExternalStore:
    """Redis-style external store relaying shuffle data between SLs.

    Shuffle through an external hop is slower than Spark's direct
    VM-to-VM transfer; ``relative_shuffle_penalty`` captures that extra
    latency as a fraction of the shuffled volume's transfer time.
    """

    bandwidth_mib_per_s: float = 400.0
    request_latency_s: float = 0.001
    relative_shuffle_penalty: float = 0.15

    def __post_init__(self) -> None:
        if self.bandwidth_mib_per_s <= 0:
            raise ValueError("bandwidth_mib_per_s must be positive")
        if self.request_latency_s < 0:
            raise ValueError("request_latency_s must be non-negative")
        if self.relative_shuffle_penalty < 0:
            raise ValueError("relative_shuffle_penalty must be non-negative")

    def transfer_seconds(self, n_bytes: float) -> float:
        """Time to push or pull ``n_bytes`` through the store."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        base = n_bytes / (self.bandwidth_mib_per_s * _MIB)
        return self.request_latency_s + base * (1.0 + self.relative_shuffle_penalty)
