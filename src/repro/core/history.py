"""The History Server (HS).

"History Server captures and stores the metrics outlined in Table 3"
(Section 4.1); the prototype stores monitoring data as JSON and serves it
to other components over internal DNS APIs (Section 5).  Offline, the HS
is an in-process store with the same responsibilities:

- append-only log of :class:`ExecutionRecord` entries,
- per-query lookups (records, mean historical duration),
- training-set assembly as a :class:`repro.ml.dataset.Dataset`,
- JSON round-tripping so histories survive process restarts.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.core.features import FEATURE_NAMES, FeatureVector
from repro.ml.dataset import Dataset

__all__ = ["ExecutionRecord", "HistoryServer"]


@dataclasses.dataclass(frozen=True)
class ExecutionRecord:
    """One completed query execution: features, label and billing."""

    query_id: str
    features: FeatureVector
    duration_s: float
    cost_dollars: float
    provider: str
    relay: bool

    def to_json_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "features": dataclasses.asdict(self.features),
            "duration_s": self.duration_s,
            "cost_dollars": self.cost_dollars,
            "provider": self.provider,
            "relay": self.relay,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ExecutionRecord":
        return cls(
            query_id=payload["query_id"],
            features=FeatureVector(**payload["features"]),
            duration_s=payload["duration_s"],
            cost_dollars=payload["cost_dollars"],
            provider=payload["provider"],
            relay=payload["relay"],
        )


class HistoryServer:
    """Append-only store of execution records with training-set assembly.

    ``max_records_per_query`` turns the store into a sliding window: each
    query keeps only its most recent executions and the global log is
    compacted to match.  Million-arrival replays need this -- an unbounded
    log is both O(n) memory and O(n) per :meth:`historical_duration` call.
    The default (``None``) keeps today's unbounded behaviour exactly.
    """

    def __init__(self, max_records_per_query: int | None = None) -> None:
        if max_records_per_query is not None and max_records_per_query < 1:
            raise ValueError("max_records_per_query must be at least 1")
        self.max_records_per_query = max_records_per_query
        self._records: list[ExecutionRecord] = []
        self._by_query: dict[str, list[ExecutionRecord]] = {}
        self._evicted = 0
        # A logical clock standing in for wall-clock submit epochs; each
        # record advances it so start-time-epoch features are monotone.
        self._logical_epoch = 1_700_000_000.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, record: ExecutionRecord) -> None:
        """Append one completed execution."""
        if record.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._records.append(record)
        per_query = self._by_query.setdefault(record.query_id, [])
        per_query.append(record)
        cap = self.max_records_per_query
        if cap is not None and len(per_query) > cap:
            del per_query[0]
            self._evicted += 1
            # Amortised O(1): rebuild the global log once evictions make
            # up half of it, preserving append order of the survivors.
            if self._evicted * 2 > len(self._records):
                self._compact()

    def _compact(self) -> None:
        """Drop evicted records from the global log (order-preserving)."""
        if not self._evicted:
            return
        kept = {
            id(r) for records in self._by_query.values() for r in records
        }
        self._records = [r for r in self._records if id(r) in kept]
        self._evicted = 0

    def next_epoch(self, spacing_s: float = 300.0) -> float:
        """Monotone submit-time epochs for successive jobs."""
        self._logical_epoch += spacing_s
        return self._logical_epoch

    # ------------------------------------------------------------------
    # Lookups (the prototype's "internal DNS APIs")
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        self._compact()
        return len(self._records)

    @property
    def records(self) -> tuple[ExecutionRecord, ...]:
        self._compact()
        return tuple(self._records)

    def known_query_ids(self) -> tuple[str, ...]:
        """Queries with at least one recorded execution."""
        return tuple(sorted(self._by_query))

    def records_for(self, query_id: str) -> tuple[ExecutionRecord, ...]:
        return tuple(self._by_query.get(query_id, ()))

    def historical_duration(self, query_id: str) -> float:
        """Mean observed completion time of ``query_id``.

        This is the "query-duration" feature of Table 3 -- "the best
        estimation for completion time" a trained model starts from.
        """
        records = self._by_query.get(query_id)
        if not records:
            raise KeyError(f"no history for query {query_id!r}")
        return float(np.mean([record.duration_s for record in records]))

    def recent_records(self, limit: int) -> tuple[ExecutionRecord, ...]:
        """The ``limit`` most recent executions (batch retraining input)."""
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self._compact()
        return tuple(self._records[-limit:])

    # ------------------------------------------------------------------
    # Training-set assembly
    # ------------------------------------------------------------------

    def as_dataset(
        self, query_ids: tuple[str, ...] | None = None
    ) -> Dataset:
        """Features/targets of all (or the selected queries') records."""
        self._compact()
        if query_ids is None:
            selected = self._records
        else:
            wanted = set(query_ids)
            selected = [r for r in self._records if r.query_id in wanted]
        if not selected:
            raise ValueError("no records match the requested queries")
        features = np.stack([r.features.as_array() for r in selected])
        targets = np.array([r.duration_s for r in selected])
        return Dataset(features, targets, FEATURE_NAMES)

    # ------------------------------------------------------------------
    # JSON persistence (Section 5 stores monitoring data as JSON)
    # ------------------------------------------------------------------

    def dump_json(self, path: str | pathlib.Path) -> None:
        """Write the full history to a JSON file."""
        self._compact()
        payload = {
            "logical_epoch": self._logical_epoch,
            "records": [record.to_json_dict() for record in self._records],
        }
        pathlib.Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load_json(
        cls,
        path: str | pathlib.Path,
        max_records_per_query: int | None = None,
    ) -> "HistoryServer":
        """Rebuild a history server from :meth:`dump_json` output."""
        payload = json.loads(pathlib.Path(path).read_text())
        server = cls(max_records_per_query)
        server._logical_epoch = float(payload["logical_epoch"])
        for entry in payload["records"]:
            server.record(ExecutionRecord.from_json_dict(entry))
        return server
