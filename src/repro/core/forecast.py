"""Workload forecasting for resource management: arrivals drive warmth.

Smartpick's thesis is that *prediction* should drive resource decisions,
yet the pool's stock autoscalers are rear-view heuristics: a fixed
keep-alive window, or a demand rate measured after the fact.  This module
closes the loop the paper motivates (and ServerMix frames as the
keep-alive-cost vs cold-start-latency tradeoff):

- :class:`ArrivalForecaster` watches the arrival stream per *query class*
  (the key the Workload Predictor derives from its Table 3 feature
  schema, :meth:`~repro.core.predictor.WorkloadPredictor.query_class`)
  and forecasts the gap to the next arrival.  Forecasts are optionally
  *scoped* -- one sub-stream per pool shard -- so a shard that stopped
  receiving arrivals forecasts "nothing coming" even while another shard
  is burning hot.
- :class:`PredictiveKeepAlive` turns those forecasts into keep-alive
  decisions: an instance stays warm only when the forecast gap beats the
  **break-even bound** -- the idle time at which keep-alive spend equals
  the warm-boot discount, derived per :class:`~repro.cloud.instances.InstanceKind`
  from the provider's boot latencies and the price book (see
  :meth:`PredictiveKeepAlive.break_even_s` for the derivation).
- :class:`AdaptiveBatchWindow` tunes the serving layer's arrival
  coalescing window from the observed arrival rate and the measured
  per-pass decision latency (the queueing break-even window from the
  micro-batched serving work).

The feedback path is: serving observes arrivals -> forecaster predicts
the next gap per class and shard -> the pool's autoscaler converts the
gap into a keep-alive window at every release.
"""

from __future__ import annotations

import math

from repro.cloud.instances import InstanceKind
from repro.cloud.pool import AutoscalerPolicy, ClusterPool, PoolShard

__all__ = [
    "ArrivalForecaster",
    "AdaptiveBatchWindow",
    "PredictiveKeepAlive",
    "break_even_s",
]


def break_even_s(
    kind: InstanceKind,
    pool: ClusterPool,
    shard: PoolShard | None = None,
) -> float:
    """Idle seconds at which keep-alive spend equals the warm discount.

    Keeping a worker warm for ``t`` idle seconds costs ``rate * t`` (the
    same per-second rate the pool bills idle time at).  A warm hand-over
    then saves the billed boot gap -- the cold boot is billed inside the
    next lease at the same rate, the warm re-attach at only
    ``warm_boot_s`` -- plus, for serverless workers, the invocation fee a
    cold spawn would pay.  Setting cost equal to saving and dividing by
    the rate:

    - VM:  ``t* = vm_boot_s - warm_vm_boot_s``
    - SL:  ``t* = (sl_boot_s - warm_sl_boot_s) + invocation / sl_rate``

    so a worker is worth keeping warm exactly when the next arrival is
    expected within ``t*``.  The same bound prices *pre-warming*: booting
    a worker ahead of a predicted burst pays off exactly when the
    expected idle wait before its first hand-over stays under ``t*``
    (see :class:`repro.core.epochs.FleetPlanner`).
    """
    config = shard.config if shard is not None else pool.config
    if kind is InstanceKind.VM:
        return max(
            pool.provider.vm_boot_seconds - config.warm_vm_boot_s, 0.0
        )
    boot_gap = max(
        pool.provider.sl_boot_seconds - config.warm_sl_boot_s, 0.0
    )
    return boot_gap + pool.prices.sl_invocation / pool.prices.sl_per_second

#: Cap on distinct query-class meters kept per forecast scope; overflow
#: evicts the class with the oldest last arrival (the most stale, hence
#: the least able to ever contribute a forecast again).
_MAX_CLASSES_PER_SCOPE = 512


class _ClassMeter:
    """Inter-arrival statistics of one query class on one scope."""

    __slots__ = ("last_arrival", "gap_ewma", "n_arrivals")

    def __init__(self) -> None:
        self.last_arrival: float | None = None
        self.gap_ewma: float | None = None
        self.n_arrivals = 0

    def update(self, time_s: float, alpha: float, min_gap_s: float) -> None:
        self.n_arrivals += 1
        if self.last_arrival is None:
            self.last_arrival = time_s
            return
        if time_s < self.last_arrival:
            # Admission-delayed resubmissions can observe slightly out of
            # order; a backwards step carries no gap information.
            return
        gap = max(time_s - self.last_arrival, min_gap_s)
        if self.gap_ewma is None:
            self.gap_ewma = gap
        else:
            self.gap_ewma = alpha * gap + (1.0 - alpha) * self.gap_ewma
        self.last_arrival = time_s


class ArrivalForecaster:
    """Forecasts the next-arrival gap per query class (and per scope).

    Parameters
    ----------
    alpha:
        EWMA smoothing factor for inter-arrival gaps (newest gap weight).
    stale_after:
        A class whose last arrival is older than ``stale_after`` times its
        smoothed gap is considered *gone* and contributes no forecast --
        this is what lets a drained shard's forecast collapse to "nothing
        coming" instead of parroting its last busy period forever.
    min_gap_s:
        Floor applied to observed gaps so same-tick bursts cannot drive
        the EWMA (and with it the staleness horizon) to zero.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        stale_after: float = 4.0,
        min_gap_s: float = 0.05,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if stale_after <= 0.0 or min_gap_s <= 0.0:
            raise ValueError("stale_after and min_gap_s must be positive")
        self.alpha = alpha
        self.stale_after = stale_after
        self.min_gap_s = min_gap_s
        self._scopes: dict[str | None, dict[object, _ClassMeter]] = {None: {}}

    # ------------------------------------------------------------------
    # Observation (the serving layer feeds this)
    # ------------------------------------------------------------------

    def observe(
        self, class_key: object, time_s: float, scope: str | None = None
    ) -> None:
        """Record one arrival of ``class_key`` at ``time_s``.

        The arrival always feeds the global (``None``) scope; when
        ``scope`` names a shard it additionally feeds that shard's
        sub-stream, so per-shard forecasts reflect only the arrivals
        actually routed there.  Each scope keeps at most
        ``_MAX_CLASSES_PER_SCOPE`` class meters (stalest evicted), so a
        long-lived forecaster's memory -- and the per-release forecast
        scan -- stay bounded however many distinct classes pass through.
        """
        self._feed(self._scopes[None], class_key, time_s)
        if scope is not None:
            self._feed(self._scopes.setdefault(scope, {}), class_key, time_s)

    def _feed(
        self, meters: dict[object, _ClassMeter], class_key: object,
        time_s: float,
    ) -> None:
        meter = meters.get(class_key)
        if meter is None:
            if len(meters) >= _MAX_CLASSES_PER_SCOPE:
                stalest = min(
                    meters,
                    key=lambda key: meters[key].last_arrival or 0.0,
                )
                del meters[stalest]
            meter = meters[class_key] = _ClassMeter()
        meter.update(time_s, self.alpha, self.min_gap_s)

    def ensure_scope(self, scope: str) -> None:
        """Pin a scope so it forecasts on its own stream from the start.

        A scope that exists but has seen no arrivals forecasts ``inf``
        (drained); an *unknown* scope falls back to the global stream.
        Feeders that scope every observation (the serving layer) pin
        their scopes up front so a shard that never receives a routed
        arrival is treated as drained, not as pool-global.
        """
        self._scopes.setdefault(scope, {})

    # ------------------------------------------------------------------
    # Forecasts
    # ------------------------------------------------------------------

    def class_gap(
        self, class_key: object, scope: str | None = None
    ) -> float:
        """The smoothed inter-arrival gap of one class (inf if unknown)."""
        meter = self._scopes.get(scope, {}).get(class_key)
        if meter is None or meter.gap_ewma is None:
            return math.inf
        return meter.gap_ewma

    def forecast_gap(self, now: float, scope: str | None = None) -> float:
        """Expected seconds until the next arrival (``inf`` = none coming).

        Per active class the expected next arrival is ``last + gap_ewma``;
        the forecast is the earliest over classes.  A class overdue by
        less than ``stale_after`` gaps is treated as renewal-memoryless
        (its residual is one smoothed gap); one overdue beyond that is
        stale and contributes nothing.  A scope that has never observed
        an arrival falls back to the global stream -- the caller simply
        is not feeding per-scope observations -- while a scope with
        *stale* data correctly forecasts ``inf`` (drained).
        """
        meters = self._scopes.get(scope)
        if meters is None:  # unknown scope: global behaviour (a *pinned*
            # empty scope instead forecasts inf -- see ensure_scope)
            meters = self._scopes[None]
        best = math.inf
        for meter in meters.values():
            if meter.gap_ewma is None or meter.last_arrival is None:
                continue
            if now - meter.last_arrival > self.stale_after * meter.gap_ewma:
                continue  # the class stopped arriving
            remaining = meter.last_arrival + meter.gap_ewma - now
            if remaining <= 0.0:
                # Mildly overdue: approximate the renewal residual with
                # one smoothed gap rather than forecasting "now".
                remaining = meter.gap_ewma
            best = min(best, remaining)
        return best

    def classes(self, scope: str | None = None) -> tuple[object, ...]:
        """The class keys observed on a scope (diagnostics)."""
        return tuple(self._scopes.get(scope, {}))


class PredictiveKeepAlive(AutoscalerPolicy):
    """Forecast-driven keep-alive gated on the break-even bound.

    At every release the policy asks the forecaster for the expected gap
    to the next arrival -- scoped to the releasing shard, so hot shards
    stay warm while cold shards drain -- and keeps the worker warm only
    when that gap beats :meth:`break_even_s`, the idle time at which the
    keep-alive spend equals what a warm start saves.  The keep-alive
    window is ``headroom`` forecast gaps (absorbing forecast error),
    never exceeding ``headroom`` times the break-even bound nor
    ``max_keep_alive_s``.

    Parameters
    ----------
    forecaster:
        The :class:`ArrivalForecaster` fed by the serving layer; a
        private one is created when omitted (feed it via
        :meth:`observe_arrival`).
    headroom:
        Multiple of the forecast gap an instance stays warm for.
    max_keep_alive_s:
        Absolute cap on any keep-alive window.
    per_shard:
        When true (default), forecasts are scoped to the releasing
        shard; false restores pool-global forecasting.
    duration_fraction:
        Duration-aware break-even: widen the park bound by this fraction
        of the smoothed observed query duration (fed via
        :meth:`observe_duration`).  A long-running workload amortises a
        parked worker's idle spend over far more billed lease time --
        and a cold boot delays a long query's completion just as much as
        a short one's -- so the longer the typical query, the further
        past the raw boot-gap break-even parking stays worthwhile.  The
        default ``0.0`` ignores durations entirely (the original bound,
        bit for bit).
    """

    def __init__(
        self,
        forecaster: ArrivalForecaster | None = None,
        headroom: float = 2.0,
        max_keep_alive_s: float = 600.0,
        per_shard: bool = True,
        duration_fraction: float = 0.0,
    ) -> None:
        if headroom <= 0.0 or max_keep_alive_s < 0.0:
            raise ValueError("headroom must be positive, the cap non-negative")
        if duration_fraction < 0.0:
            raise ValueError("duration_fraction must be non-negative")
        self.forecaster = forecaster or ArrivalForecaster()
        self.headroom = headroom
        self.max_keep_alive_s = max_keep_alive_s
        self.per_shard = per_shard
        self.duration_fraction = duration_fraction
        self._duration_ewma: float | None = None

    def observe_arrival(
        self, class_key: object, time_s: float, scope: str | None = None
    ) -> None:
        """Feed one arrival observation through to the forecaster.

        The serving layer duck-types on this method: any autoscaler that
        exposes it receives ``(query class, arrival time, routed shard)``
        for every arrival it serves.
        """
        self.forecaster.observe(class_key, time_s, scope=scope)

    def observe_duration(self, seconds: float) -> None:
        """Feed one completed query's duration into the smoothed estimate.

        An EWMA (alpha 0.3, matching the forecaster's default) keeps the
        estimate responsive to workload shifts without letting a single
        outlier swing the park bound.  Non-positive durations are
        ignored.  Only consulted when ``duration_fraction > 0``.
        """
        seconds = float(seconds)
        if seconds <= 0.0:
            return
        if self._duration_ewma is None:
            self._duration_ewma = seconds
        else:
            self._duration_ewma += 0.3 * (seconds - self._duration_ewma)

    @property
    def duration_estimate_s(self) -> float | None:
        """The smoothed query duration, or ``None`` before any sample."""
        return self._duration_ewma

    def park_bound_s(
        self,
        kind: InstanceKind,
        pool: ClusterPool,
        shard: PoolShard | None = None,
    ) -> float:
        """The duration-weighted park bound: break-even plus amortisation.

        The raw break-even compares idle spend against the warm-boot
        saving of a *single* hand-over.  When typical queries run long,
        each hand-over also amortises the parked worker's idle bill over
        far more billed lease time (and a cold boot delays a long query's
        completion just as much as a short one's), so parking stays
        worthwhile a little past the raw bound.  The widening is
        ``duration_fraction * duration_ewma``; with the default fraction
        of zero this is exactly :meth:`break_even_s`.
        """
        bound = self.break_even_s(kind, pool, shard)
        if self.duration_fraction > 0.0 and self._duration_ewma is not None:
            bound += self.duration_fraction * self._duration_ewma
        return bound

    def break_even_s(
        self,
        kind: InstanceKind,
        pool: ClusterPool,
        shard: PoolShard | None = None,
    ) -> float:
        """The break-even bound (module-level :func:`break_even_s`)."""
        return break_even_s(kind, pool, shard)

    def keep_alive(
        self,
        kind: InstanceKind,
        pool: ClusterPool,
        shard: PoolShard | None = None,
    ) -> float:
        bound = self.park_bound_s(kind, pool, shard)
        if shard is not None and self._backlog_wants(kind, pool, shard):
            # Queued demand is an arrival that already happened: the
            # released worker is about to be re-granted, so park it
            # within the break-even envelope rather than cold-cycling
            # the backlog.  (No forecast needed -- the gap is ~0.)
            return min(self.headroom * bound, self.max_keep_alive_s)
        scope = shard.name if (shard is not None and self.per_shard) else None
        gap = self.forecaster.forecast_gap(pool.simulator.now, scope=scope)
        if not gap <= bound:  # also catches gap == inf (no forecast)
            return 0.0
        return min(
            self.headroom * gap,
            self.headroom * bound,
            self.max_keep_alive_s,
        )

    @staticmethod
    def _backlog_wants(
        kind: InstanceKind, pool: ClusterPool, shard: PoolShard
    ) -> bool:
        """Whether some grantable queued lease could reuse the worker.

        A queue of quota-blocked leases (or leases needing only the
        other worker kind) is not imminent demand for *this* worker --
        parking for it would bill idle time with no chance of a warm
        hand-over.  With work stealing on, another shard's
        grant-eligible backlog counts too when it fits here: the pump
        that runs right after this decision would steal it onto this
        shard, and terminating the warm worker an instant earlier would
        cold-cycle exactly that request.
        """

        def wants(lease) -> bool:
            needs = lease.n_vm if kind is InstanceKind.VM else lease.n_sl
            return needs > 0 and pool.quota_allows(lease)

        for lease in shard.queue:
            if wants(lease):
                return True
        if pool.work_stealing:
            for other in pool.shards:
                if other is shard:
                    continue
                for lease in pool.grant_policy.candidates(other, pool):
                    if wants(lease) and shard.fits(lease):
                        return True
        return False

    def describe(self) -> str:
        scope = "per-shard" if self.per_shard else "pool-global"
        duration = (
            f", duration-weighted({self.duration_fraction:g})"
            if self.duration_fraction > 0.0
            else ""
        )
        return (
            f"predictive-keep-alive(headroom={self.headroom:g}, "
            f"max={self.max_keep_alive_s:g}s, {scope}{duration})"
        )


class AdaptiveBatchWindow:
    """Auto-tunes the arrival-coalescing window from observed feedback.

    The serving layer's micro-batcher trades *batching delay* (arrivals
    wait for their window to close) against *decision time* (a coalesced
    group shares one vectorized sizing pass).  Queueing theory gives the
    break-even: while one decision pass runs for ``D`` seconds, arrivals
    at rate ``lambda`` accumulate behind it anyway, so delaying arrivals
    up to ``D - 1/lambda`` seconds converts queueing they would suffer
    regardless into a shared pass; beyond that the marginal delay exceeds
    the one pass a coalesced member saves.  The tuner therefore tracks an
    EWMA of the observed inter-arrival gap and of the measured per-pass
    decision latency and yields::

        window = clamp(D_ewma - gap_ewma, 0, max_window_s)

    With cheap decisions or sparse arrivals the window is 0 -- coalescing
    is genuinely not worth a wait, and serving degrades to the solo
    path.  Pass an instance as ``ServingSimulator(batch_window_s=...)``
    (or the string ``"auto"`` for a fresh default-configured tuner per
    replay).
    """

    def __init__(self, max_window_s: float = 2.0, alpha: float = 0.3) -> None:
        if max_window_s < 0.0:
            raise ValueError("max_window_s must be non-negative")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.max_window_s = max_window_s
        self.alpha = alpha
        self._last_arrival: float | None = None
        self._gap_ewma: float | None = None
        self._decision_ewma: float | None = None

    def observe_arrival(self, time_s: float) -> None:
        """Record one arrival (simulated seconds).

        Out-of-order observations are ignored outright -- rewinding the
        reference would inflate the next gap fed to the EWMA.
        """
        if self._last_arrival is not None:
            if time_s < self._last_arrival:
                return
            gap = time_s - self._last_arrival
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma = (
                    self.alpha * gap + (1.0 - self.alpha) * self._gap_ewma
                )
        self._last_arrival = time_s

    def observe_decision(self, pass_seconds: float) -> None:
        """Record the measured wall time of one sizing pass."""
        if pass_seconds < 0.0:
            return
        if self._decision_ewma is None:
            self._decision_ewma = pass_seconds
        else:
            self._decision_ewma = (
                self.alpha * pass_seconds
                + (1.0 - self.alpha) * self._decision_ewma
            )

    @property
    def gap_s(self) -> float | None:
        """The smoothed inter-arrival gap (None before two arrivals)."""
        return self._gap_ewma

    @property
    def decision_s(self) -> float | None:
        """The smoothed per-pass decision latency (None before a pass)."""
        return self._decision_ewma

    def window(self) -> float:
        """The coalescing window for the next group (0 = decide solo)."""
        if self._gap_ewma is None or self._decision_ewma is None:
            return 0.0
        return min(
            max(self._decision_ewma - self._gap_ewma, 0.0),
            self.max_window_s,
        )

    def describe(self) -> str:
        return (
            f"adaptive-batch-window(max={self.max_window_s:g}s, "
            f"alpha={self.alpha:g})"
        )
