"""The Workload Prediction module (WP): Random Forest + Bayesian Optimizer.

Section 3 of the paper: a decision-tree based Random Forest quantifies
query completion time from the Table 3 features (Eq. 1), and a Bayesian
Optimizer navigates the ``{nVM, nSL}`` search space by maximising
``-(RF_t + delta)`` (Eq. 2) with a Gaussian Process surrogate and the
Probability-of-Improvement acquisition, stopping when the estimate has not
improved by 1 % for 10 consecutive searches.

Every candidate the optimizer touches lands in the Estimated Time list
(``ET_l``); when the cost-performance knob is set, Eq. 4 is solved over
that list (:mod:`repro.core.tradeoff`).

The module is deliberately self-contained -- it consumes only features and
a price book -- so other SEDA systems can use it as an external prediction
service (Section 5; see :mod:`repro.core.rpc`).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.cloud.providers import ProviderProfile
from repro.core.features import (
    FEATURE_NAMES,
    INTEGER_FEATURE_COLUMNS,
    FeatureVector,
)
from repro.core.tradeoff import EstimatedTimeEntry, select_with_knob
from repro.ml.acquisition import AcquisitionFunction, make_acquisition
from repro.ml.bayesian_optimizer import BayesianOptimizer
from repro.ml.dataset import DataBurstAugmenter, Dataset
from repro.ml.random_forest import RandomForestRegressor

__all__ = [
    "PredictionRequest",
    "ConfigDecision",
    "WorkloadPredictor",
    "EstimatedTimeEntry",
]

_MODES = ("hybrid", "vm-only", "sl-only")


@dataclasses.dataclass(frozen=True)
class PredictionRequest:
    """Everything WP needs to size one incoming query.

    ``historical_duration_s`` is the query-duration prior: for known
    queries it comes straight from the History Server; for alien queries
    the Similarity Checker substitutes the closest neighbour's value
    (Section 4.2).
    """

    query_id: str
    input_size_gb: float
    start_time_epoch: float
    historical_duration_s: float
    num_waiting_apps: int = 0

    def feature_vector(self, n_vm: int, n_sl: int) -> FeatureVector:
        """The Table 3 features for one candidate configuration."""
        return FeatureVector.build(
            n_vm=n_vm,
            n_sl=n_sl,
            input_size_gb=self.input_size_gb,
            start_time_epoch=self.start_time_epoch,
            historical_duration_s=self.historical_duration_s,
            num_waiting_apps=self.num_waiting_apps,
        )

    def feature_matrix(self, candidates: np.ndarray) -> np.ndarray:
        """The Table 3 features for a whole ``(n, 2)`` candidate grid."""
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        return FeatureVector.build_matrix(
            n_vm=candidates[:, 0],
            n_sl=candidates[:, 1],
            input_size_gb=self.input_size_gb,
            start_time_epoch=self.start_time_epoch,
            historical_duration_s=self.historical_duration_s,
            num_waiting_apps=self.num_waiting_apps,
        )


@dataclasses.dataclass
class ConfigDecision:
    """The WP's answer: a configuration plus everything behind it."""

    query_id: str
    n_vm: int
    n_sl: int
    predicted_seconds: float
    estimated_cost: float
    knob: float
    best_entry: EstimatedTimeEntry
    chosen_entry: EstimatedTimeEntry
    et_list: list[EstimatedTimeEntry]
    n_evaluations: int
    converged: bool
    inference_seconds: float

    @property
    def config(self) -> tuple[int, int]:
        return (self.n_vm, self.n_sl)

    def summary(self) -> str:
        return (
            f"{self.query_id}: {self.n_vm} VM + {self.n_sl} SL, "
            f"~{self.predicted_seconds:.1f}s, ~{self.estimated_cost * 100:.2f} cents "
            f"(knob={self.knob:g}, {self.n_evaluations} probes)"
        )


class WorkloadPredictor:
    """RF + BO workload prediction over the hybrid configuration space.

    Parameters
    ----------
    provider, prices:
        Target cloud profile and its price book (cost estimation for
        Eq. 4 and reports).
    relay:
        Whether decisions assume the relay-instances mechanism; affects
        the SL usage time in cost estimates (SLs retire at VM readiness).
    max_vm, max_sl:
        Bounds of the ``{nVM, nSL}`` search grid.
    n_estimators, max_depth, min_samples_leaf:
        Random Forest hyper-parameters.
    acquisition:
        BO acquisition short name (``pi`` default, per the paper).
    burst_factor, burst_jitter:
        Data-burst augmentation heuristic (Section 5: ~10x, +-5 %).
    rng:
        Seed or generator; all stochastic parts derive from it.
    """

    def __init__(
        self,
        provider: ProviderProfile,
        prices: PriceBook,
        relay: bool = True,
        max_vm: int = 12,
        max_sl: int = 12,
        n_estimators: int = 100,
        max_depth: int | None = 20,
        min_samples_leaf: int = 2,
        acquisition: str | AcquisitionFunction = "pi",
        bo_patience: int = 10,
        bo_improvement_threshold: float = 0.01,
        burst_factor: int = 10,
        burst_jitter: float = 0.05,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_vm < 0 or max_sl < 0 or max_vm + max_sl == 0:
            raise ValueError("the search grid must contain a worker")
        self.provider = provider
        self.prices = prices
        self.relay = relay
        self.max_vm = max_vm
        self.max_sl = max_sl
        self.bo_patience = bo_patience
        self.bo_improvement_threshold = bo_improvement_threshold
        if isinstance(acquisition, str):
            acquisition = make_acquisition(acquisition)
        self.acquisition = acquisition
        self._rng = np.random.default_rng(rng)
        self._forest = RandomForestRegressor(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=1.0,
            oob_score=True,
            rng=self._rng,
        )
        self._augmenter = DataBurstAugmenter(
            factor=burst_factor,
            jitter=burst_jitter,
            integer_columns=INTEGER_FEATURE_COLUMNS,
            rng=self._rng,
        )
        self.known_queries: set[str] = set()
        self.model_version = 0
        self.training_set_size = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        dataset: Dataset,
        query_ids: tuple[str, ...] = (),
        augment: bool = True,
    ) -> Dataset:
        """(Re)train the forest; returns the (augmented) training set.

        With ``augment=True`` the Section 5 heuristic runs first: each
        sample is varied by +-5 % into a ~10x burst, shuffled so later
        splits stay unbiased.
        """
        if dataset.feature_names and dataset.feature_names != FEATURE_NAMES:
            raise ValueError("dataset columns must follow FEATURE_NAMES")
        training = self._augmenter.augment(dataset) if augment else dataset
        self._forest.fit(training.features, training.targets)
        self.known_queries.update(query_ids)
        self.model_version += 1
        self.training_set_size = len(training)
        return training

    def warm_update(self, dataset: Dataset, n_new_trees: int = 20) -> None:
        """Incremental update: keep existing trees, add new ones.

        This is the ``warm_start`` path of Section 5's background
        retraining -- the new trees are fitted on the fresh data while the
        old ensemble keeps its knowledge.
        """
        training = self._augmenter.augment(dataset)
        self._forest.add_trees(training.features, training.targets, n_new_trees)
        self.model_version += 1
        self.training_set_size += len(training)

    @property
    def is_trained(self) -> bool:
        return self._forest.n_trees > 0

    @property
    def forest(self) -> RandomForestRegressor:
        return self._forest

    def is_known(self, query_id: str) -> bool:
        return query_id in self.known_queries

    # ------------------------------------------------------------------
    # Point prediction (Eq. 1)
    # ------------------------------------------------------------------

    def predict_duration(self, features: FeatureVector) -> float:
        """``RF_t``: expected completion time for one configuration."""
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        return float(self._forest.predict(features.as_array()[None, :])[0])

    def predict_durations(self, features: np.ndarray) -> np.ndarray:
        """Batched ``RF_t``: one forest pass over ``(n, d)`` feature rows.

        One ensemble traversal for the whole batch is how the grid search
        stays cheap: a 13x13 candidate grid (or several queued queries'
        grids stacked) costs one ``predict`` call, not hundreds.
        """
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        return self._forest.predict(np.atleast_2d(features))

    # ------------------------------------------------------------------
    # Cost estimation (the Eq. 4 cost term)
    # ------------------------------------------------------------------

    def estimate_cost(self, t_est: float, n_vm: int, n_sl: int) -> float:
        """``nVM * t_vm * C_vm + nSL * t_sl * C_sl`` plus the Redis host.

        Under relay, SLs only run for the VM cold-boot window (their usage
        time ``t_sl`` is capped at the boot latency whenever VMs are part
        of the configuration).
        """
        prices = self.prices
        vm_rate = (
            prices.vm_per_second
            + prices.vm_burst_per_second
            + prices.vm_storage_per_second
        )
        t_vm = t_est
        if self.relay and n_vm > 0:
            t_sl = min(t_est, self.provider.vm_boot_seconds)
        else:
            t_sl = t_est
        cost = n_vm * t_vm * vm_rate + n_sl * t_sl * prices.sl_per_second
        if n_sl > 0:
            cost += t_est * prices.redis_per_second
        return cost

    # ------------------------------------------------------------------
    # Resource determination (Eq. 2 + Eq. 4)
    # ------------------------------------------------------------------

    def candidate_grid(self, mode: str = "hybrid") -> np.ndarray:
        """The ``{nVM, nSL}`` search space for a determination mode."""
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        candidates = []
        vm_range = range(self.max_vm + 1) if mode != "sl-only" else (0,)
        sl_range = range(self.max_sl + 1) if mode != "vm-only" else (0,)
        for n_vm in vm_range:
            for n_sl in sl_range:
                if n_vm + n_sl == 0:
                    continue
                candidates.append((float(n_vm), float(n_sl)))
        return np.asarray(candidates)

    def determine(
        self,
        request: PredictionRequest,
        knob: float = 0.0,
        mode: str = "hybrid",
        max_iterations: int = 60,
    ) -> ConfigDecision:
        """Determine the (near-)optimal configuration for a query.

        Runs the BO loop over the candidate grid against the RF model,
        assembles the Estimated Time list from the probes, and applies the
        tradeoff knob (Eq. 4) when requested.
        """
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        started = time.perf_counter()
        candidates = self.candidate_grid(mode)

        def objective(point: np.ndarray) -> float:
            n_vm, n_sl = int(point[0]), int(point[1])
            predicted = self.predict_duration(request.feature_vector(n_vm, n_sl))
            # Eq. 2: maximise -(RF_t + delta), delta ~ N(0, sigma).
            delta = self._rng.normal(0.0, 0.01 * max(predicted, 1.0))
            return -(predicted + delta)

        optimizer = BayesianOptimizer(
            objective=objective,
            candidates=candidates,
            acquisition=self.acquisition,
            n_initial=min(4, candidates.shape[0]),
            improvement_threshold=self.bo_improvement_threshold,
            patience=self.bo_patience,
            rng=self._rng,
        )
        result = optimizer.maximize(max_iterations=max_iterations)

        # One batched forest pass covers every probe plus the winner --
        # the noise-free counterpart of the noisy Eq. 2 objective values.
        probe_points = np.array(
            [probe.point for probe in result.history] + [result.best_point]
        )
        estimates = self.predict_durations(request.feature_matrix(probe_points))
        et_list = []
        for point, t_est in zip(probe_points[:-1], estimates[:-1]):
            n_vm, n_sl = int(point[0]), int(point[1])
            et_list.append(
                EstimatedTimeEntry(
                    n_vm=n_vm,
                    n_sl=n_sl,
                    estimated_seconds=float(t_est),
                    estimated_cost=self.estimate_cost(float(t_est), n_vm, n_sl),
                )
            )

        best_vm, best_sl = int(result.best_point[0]), int(result.best_point[1])
        t_best = float(estimates[-1])
        best_entry = EstimatedTimeEntry(
            n_vm=best_vm,
            n_sl=best_sl,
            estimated_seconds=t_best,
            estimated_cost=self.estimate_cost(t_best, best_vm, best_sl),
        )
        chosen = select_with_knob(et_list, best_entry, knob)
        elapsed = time.perf_counter() - started
        return ConfigDecision(
            query_id=request.query_id,
            n_vm=chosen.n_vm,
            n_sl=chosen.n_sl,
            predicted_seconds=chosen.estimated_seconds,
            estimated_cost=chosen.estimated_cost,
            knob=knob,
            best_entry=best_entry,
            chosen_entry=chosen,
            et_list=et_list,
            n_evaluations=result.n_evaluations,
            converged=result.converged,
            inference_seconds=elapsed,
        )

    def determine_batch(
        self,
        requests: list[PredictionRequest],
        knob: float = 0.0,
        mode: str = "hybrid",
    ) -> list[ConfigDecision]:
        """Size a whole batch of queued queries with ONE forest pass.

        Every request's full candidate grid is stacked into a single
        Random Forest ``predict`` call -- the batched counterpart of the
        per-query BO loop in :meth:`determine`.  Because the search is
        exhaustive over the grid, each decision is the true RF optimum
        (the BO loop merely approximates it with fewer probes), so the
        resulting Estimated Time lists cover the entire grid and the Eq. 4
        knob selection applies unchanged.
        """
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        if not requests:
            return []
        started = time.perf_counter()
        candidates = self.candidate_grid(mode)
        grid_size = candidates.shape[0]
        stacked = np.vstack(
            [request.feature_matrix(candidates) for request in requests]
        )
        estimates = self.predict_durations(stacked)
        elapsed = time.perf_counter() - started

        decisions = []
        for index, request in enumerate(requests):
            block = estimates[index * grid_size : (index + 1) * grid_size]
            et_list = [
                EstimatedTimeEntry(
                    n_vm=int(point[0]),
                    n_sl=int(point[1]),
                    estimated_seconds=float(t_est),
                    estimated_cost=self.estimate_cost(
                        float(t_est), int(point[0]), int(point[1])
                    ),
                )
                for point, t_est in zip(candidates, block)
            ]
            best_entry = min(et_list, key=lambda e: e.estimated_seconds)
            chosen = select_with_knob(et_list, best_entry, knob)
            decisions.append(
                ConfigDecision(
                    query_id=request.query_id,
                    n_vm=chosen.n_vm,
                    n_sl=chosen.n_sl,
                    predicted_seconds=chosen.estimated_seconds,
                    estimated_cost=chosen.estimated_cost,
                    knob=knob,
                    best_entry=best_entry,
                    chosen_entry=chosen,
                    et_list=et_list,
                    n_evaluations=grid_size,
                    converged=True,
                    inference_seconds=elapsed / len(requests),
                )
            )
        return decisions
