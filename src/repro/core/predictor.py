"""The Workload Prediction module (WP): Random Forest + Bayesian Optimizer.

Section 3 of the paper: a decision-tree based Random Forest quantifies
query completion time from the Table 3 features (Eq. 1), and a Bayesian
Optimizer navigates the ``{nVM, nSL}`` search space by maximising
``-(RF_t + delta)`` (Eq. 2) with a Gaussian Process surrogate and the
Probability-of-Improvement acquisition, stopping when the estimate has not
improved by 1 % for 10 consecutive searches.

Every candidate the optimizer touches lands in the Estimated Time list
(``ET_l``); when the cost-performance knob is set, Eq. 4 is solved over
that list (:mod:`repro.core.tradeoff`).

The module is deliberately self-contained -- it consumes only features and
a price book -- so other SEDA systems can use it as an external prediction
service (Section 5; see :mod:`repro.core.rpc`).
"""

from __future__ import annotations

import dataclasses
import functools
import math
import time

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.cloud.providers import ProviderProfile
from repro.core.features import (
    FEATURE_NAMES,
    INTEGER_FEATURE_COLUMNS,
    FeatureVector,
)
from repro.core.tradeoff import DecisionGrid, EstimatedTimeEntry
from repro.ml.acquisition import AcquisitionFunction, make_acquisition
from repro.ml.bayesian_optimizer import BayesianOptimizer
from repro.ml.dataset import DataBurstAugmenter, Dataset
from repro.ml.grid_inference import GridPack
from repro.ml.random_forest import RandomForestRegressor

__all__ = [
    "PredictionRequest",
    "ConfigDecision",
    "WorkloadPredictor",
    "EstimatedTimeEntry",
    "DecisionGrid",
]

_MODES = ("hybrid", "vm-only", "sl-only")

#: Upper bound on memoized grid decisions kept per predictor (FIFO eviction).
_DECISION_CACHE_LIMIT = 1024


@dataclasses.dataclass(frozen=True)
class PredictionRequest:
    """Everything WP needs to size one incoming query.

    ``historical_duration_s`` is the query-duration prior: for known
    queries it comes straight from the History Server; for alien queries
    the Similarity Checker substitutes the closest neighbour's value
    (Section 4.2).
    """

    query_id: str
    input_size_gb: float
    start_time_epoch: float
    historical_duration_s: float
    num_waiting_apps: int = 0

    def feature_vector(self, n_vm: int, n_sl: int) -> FeatureVector:
        """The Table 3 features for one candidate configuration."""
        return FeatureVector.build(
            n_vm=n_vm,
            n_sl=n_sl,
            input_size_gb=self.input_size_gb,
            start_time_epoch=self.start_time_epoch,
            historical_duration_s=self.historical_duration_s,
            num_waiting_apps=self.num_waiting_apps,
        )

    def feature_matrix(self, candidates: np.ndarray) -> np.ndarray:
        """The Table 3 features for a whole ``(n, 2)`` candidate grid."""
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        return FeatureVector.build_matrix(
            n_vm=candidates[:, 0],
            n_sl=candidates[:, 1],
            input_size_gb=self.input_size_gb,
            start_time_epoch=self.start_time_epoch,
            historical_duration_s=self.historical_duration_s,
            num_waiting_apps=self.num_waiting_apps,
        )


@dataclasses.dataclass
class ConfigDecision:
    """The WP's answer: a configuration plus everything behind it.

    The Estimated Time list travels in array form (:class:`DecisionGrid`,
    the ``grid`` field); :attr:`et_list` materialises the familiar
    ``list[EstimatedTimeEntry]`` view lazily on first access, so callers
    that never inspect the list (the entire serving hot path) never pay
    for building hundreds of entry objects per decision.
    """

    query_id: str
    n_vm: int
    n_sl: int
    predicted_seconds: float
    estimated_cost: float
    knob: float
    best_entry: EstimatedTimeEntry
    chosen_entry: EstimatedTimeEntry
    grid: DecisionGrid
    n_evaluations: int
    converged: bool
    inference_seconds: float

    @property
    def config(self) -> tuple[int, int]:
        return (self.n_vm, self.n_sl)

    @functools.cached_property
    def et_list(self) -> list[EstimatedTimeEntry]:
        """The Estimated Time list, materialised from :attr:`grid`.

        Built on first access and cached on the decision; the entries
        round-trip exactly (``int`` / ``float`` of the same array cells
        the eager construction used).
        """
        return self.grid.entries()

    def summary(self) -> str:
        return (
            f"{self.query_id}: {self.n_vm} VM + {self.n_sl} SL, "
            f"~{self.predicted_seconds:.1f}s, ~{self.estimated_cost * 100:.2f} cents "
            f"(knob={self.knob:g}, {self.n_evaluations} probes)"
        )


class WorkloadPredictor:
    """RF + BO workload prediction over the hybrid configuration space.

    Parameters
    ----------
    provider, prices:
        Target cloud profile and its price book (cost estimation for
        Eq. 4 and reports).
    relay:
        Whether decisions assume the relay-instances mechanism; affects
        the SL usage time in cost estimates (SLs retire at VM readiness).
    max_vm, max_sl:
        Bounds of the ``{nVM, nSL}`` search grid.
    n_estimators, max_depth, min_samples_leaf:
        Random Forest hyper-parameters.
    acquisition:
        BO acquisition short name (``pi`` default, per the paper).
    burst_factor, burst_jitter:
        Data-burst augmentation heuristic (Section 5: ~10x, +-5 %).
    rng:
        Seed or generator; all stochastic parts derive from it.
    """

    def __init__(
        self,
        provider: ProviderProfile,
        prices: PriceBook,
        relay: bool = True,
        max_vm: int = 12,
        max_sl: int = 12,
        n_estimators: int = 100,
        max_depth: int | None = 20,
        min_samples_leaf: int = 2,
        acquisition: str | AcquisitionFunction = "pi",
        bo_patience: int = 10,
        bo_improvement_threshold: float = 0.01,
        burst_factor: int = 10,
        burst_jitter: float = 0.05,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_vm < 0 or max_sl < 0 or max_vm + max_sl == 0:
            raise ValueError("the search grid must contain a worker")
        self._provider = provider
        self._prices = prices
        self.relay = relay
        self.max_vm = max_vm
        self.max_sl = max_sl
        self.bo_patience = bo_patience
        self.bo_improvement_threshold = bo_improvement_threshold
        if isinstance(acquisition, str):
            acquisition = make_acquisition(acquisition)
        self.acquisition = acquisition
        self._rng = np.random.default_rng(rng)
        self._forest = RandomForestRegressor(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=1.0,
            oob_score=True,
            rng=self._rng,
        )
        self._augmenter = DataBurstAugmenter(
            factor=burst_factor,
            jitter=burst_jitter,
            integer_columns=INTEGER_FEATURE_COLUMNS,
            rng=self._rng,
        )
        self.known_queries: set[str] = set()
        self.model_version = 0
        self.training_set_size = 0
        # Hot-path caches: the candidate grid per mode, the Eq. 4 rate
        # constants (the price book is fixed at construction -- `prices`
        # is a read-only property so the hoist cannot silently go stale),
        # and the per-model-version decision memo used by determine_batch
        # (two-touch admission: a key is memoized on its second miss, so
        # never-repeated requests cannot pollute the cache).
        self._grid_cache: dict[tuple[str, int, int], np.ndarray] = {}
        self._vm_rate = (
            prices.vm_per_second
            + prices.vm_burst_per_second
            + prices.vm_storage_per_second
        )
        self._sl_rate = prices.sl_per_second
        self._redis_rate = prices.redis_per_second
        # Cached decisions store the knob-independent array-form grid and
        # best index plus a small per-knob map of chosen indices -- a
        # fraction of the footprint of the materialised entry lists they
        # replaced.  Keying the heavy part (one forest pass worth of
        # ``(seconds, costs)``) without the knob means knob sweeps over a
        # repeated query class reuse one grid pass and only re-run the
        # cheap Eq. 4 selection.
        self._decision_cache: dict[
            tuple, tuple[DecisionGrid, int, dict[float, int]]
        ] = {}
        self._decision_probation: dict[tuple, None] = {}
        # Grid-compiled inference engines (one per mode/bounds, rebuilt
        # when the model version moves); None is memoized too so a grid
        # the kernel cannot take is not re-attempted every batch.
        self._grid_engine_cache: dict[tuple, tuple[GridPack | None, int]] = {}

    @property
    def provider(self) -> ProviderProfile:
        """The target cloud profile (read-only after construction)."""
        return self._provider

    @property
    def prices(self) -> PriceBook:
        """The price book (read-only: the Eq. 4 rates are hoisted)."""
        return self._prices

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        dataset: Dataset,
        query_ids: tuple[str, ...] = (),
        augment: bool = True,
    ) -> Dataset:
        """(Re)train the forest; returns the (augmented) training set.

        With ``augment=True`` the Section 5 heuristic runs first: each
        sample is varied by +-5 % into a ~10x burst, shuffled so later
        splits stay unbiased.
        """
        if dataset.feature_names and dataset.feature_names != FEATURE_NAMES:
            raise ValueError("dataset columns must follow FEATURE_NAMES")
        training = self._augmenter.augment(dataset) if augment else dataset
        self._forest.fit(training.features, training.targets)
        self.known_queries.update(query_ids)
        self.model_version += 1
        self.training_set_size = len(training)
        return training

    def warm_update(self, dataset: Dataset, n_new_trees: int = 20) -> None:
        """Incremental update: keep existing trees, add new ones.

        This is the ``warm_start`` path of Section 5's background
        retraining -- the new trees are fitted on the fresh data while the
        old ensemble keeps its knowledge.
        """
        training = self._augmenter.augment(dataset)
        self._forest.add_trees(training.features, training.targets, n_new_trees)
        self.model_version += 1
        self.training_set_size += len(training)

    @property
    def is_trained(self) -> bool:
        return self._forest.n_trees > 0

    @property
    def forest(self) -> RandomForestRegressor:
        return self._forest

    def is_known(self, query_id: str) -> bool:
        return query_id in self.known_queries

    def query_class(
        self, query_id: str, input_size_gb: float
    ) -> tuple[str, int]:
        """The arrival-forecast stream key for one query.

        Resource management forecasts arrivals *per query class*, and
        the class follows the predictor's own feature schema: the query
        identity plus the input size bucketed in octaves (durations and
        costs scale smoothly with size, so same-octave arrivals are one
        workload for forecasting even though their feature vectors --
        and therefore their sizing decisions -- differ slightly).
        """
        if input_size_gb <= 0.0:
            raise ValueError("input_size_gb must be positive")
        return (query_id, round(math.log2(input_size_gb)))

    # ------------------------------------------------------------------
    # Point prediction (Eq. 1)
    # ------------------------------------------------------------------

    def predict_duration(self, features: FeatureVector) -> float:
        """``RF_t``: expected completion time for one configuration."""
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        return float(self._forest.predict(features.as_array()[None, :])[0])

    def predict_durations(self, features: np.ndarray) -> np.ndarray:
        """Batched ``RF_t``: one forest pass over ``(n, d)`` feature rows.

        One ensemble traversal for the whole batch is how the grid search
        stays cheap: a 13x13 candidate grid (or several queued queries'
        grids stacked) costs one ``predict`` call, not hundreds.
        """
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        return self._forest.predict(np.atleast_2d(features))

    # ------------------------------------------------------------------
    # Cost estimation (the Eq. 4 cost term)
    # ------------------------------------------------------------------

    def estimate_cost(self, t_est: float, n_vm: int, n_sl: int) -> float:
        """``nVM * t_vm * C_vm + nSL * t_sl * C_sl`` plus the Redis host.

        Under relay, SLs only run for the VM cold-boot window (their usage
        time ``t_sl`` is capped at the boot latency whenever VMs are part
        of the configuration).  The per-second rates are hoisted to
        construction time (``_vm_rate`` etc.); the price book never
        changes after that.
        """
        t_vm = t_est
        if self.relay and n_vm > 0:
            t_sl = min(t_est, self.provider.vm_boot_seconds)
        else:
            t_sl = t_est
        cost = n_vm * t_vm * self._vm_rate + n_sl * t_sl * self._sl_rate
        if n_sl > 0:
            cost += t_est * self._redis_rate
        return cost

    def estimate_costs(
        self, t_est: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`estimate_cost` over a whole Estimated Time list.

        ``t_est`` holds one duration estimate per ``(nVM, nSL)`` row of
        ``candidates`` -- or, as a ``(batch, n)`` matrix, one estimate
        row per queued request over the shared candidate grid.  Either
        way the result is bitwise equal to calling :meth:`estimate_cost`
        per entry (same operations in the same order), just as one array
        expression.
        """
        t_est = np.asarray(t_est, dtype=np.float64)
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        if candidates.shape[0] != t_est.shape[-1]:
            raise ValueError("t_est and candidates disagree on entry count")
        n_vm = candidates[:, 0]
        n_sl = candidates[:, 1]
        if self.relay:
            t_sl = np.where(
                n_vm > 0,
                np.minimum(t_est, self.provider.vm_boot_seconds),
                t_est,
            )
        else:
            t_sl = t_est
        costs = n_vm * t_est * self._vm_rate + n_sl * t_sl * self._sl_rate
        return costs + np.where(n_sl > 0, t_est * self._redis_rate, 0.0)

    # ------------------------------------------------------------------
    # Resource determination (Eq. 2 + Eq. 4)
    # ------------------------------------------------------------------

    def _effective_bounds(
        self, max_vm: int | None, max_sl: int | None
    ) -> tuple[int, int]:
        """Clamp caller-supplied search bounds to the configured grid.

        Tenant quotas (``TenantSpec.max_leased_vms`` / ``max_leased_sls``)
        arrive here as *caps*: they can only shrink the search space, never
        widen it.  ``None`` means no override.  A cap pair that would leave
        no worker at all is ignored -- an unsatisfiable quota must degrade
        to the unconstrained search, not an empty grid.
        """
        eff_vm = self.max_vm if max_vm is None else min(self.max_vm, int(max_vm))
        eff_sl = self.max_sl if max_sl is None else min(self.max_sl, int(max_sl))
        eff_vm = max(eff_vm, 0)
        eff_sl = max(eff_sl, 0)
        if eff_vm + eff_sl == 0:
            return (self.max_vm, self.max_sl)
        return (eff_vm, eff_sl)

    def candidate_grid(
        self,
        mode: str = "hybrid",
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> np.ndarray:
        """The ``{nVM, nSL}`` search space for a determination mode.

        ``max_vm`` / ``max_sl`` cap the grid below the predictor's own
        bounds (quota-priced sizing: a tenant's lease quota shrinks the
        candidate space *before* the Eq. 4 tradeoff, so quota pressure is
        priced into the decision instead of discovered as queueing delay
        at grant time).  Built once per ``(mode, effective bounds)`` and
        memoized; the returned array is marked read-only because every
        caller shares the same instance.
        """
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        eff_vm, eff_sl = self._effective_bounds(max_vm, max_sl)
        key = (mode, eff_vm, eff_sl)
        grid = self._grid_cache.get(key)
        if grid is None:
            vm_range = (
                np.arange(eff_vm + 1) if mode != "sl-only" else np.zeros(1)
            )
            sl_range = (
                np.arange(eff_sl + 1) if mode != "vm-only" else np.zeros(1)
            )
            # indexing="ij" + ravel keeps the nested-loop order: nVM is
            # the slow axis, nSL the fast one.
            vm, sl = np.meshgrid(vm_range, sl_range, indexing="ij")
            grid = np.column_stack((vm.ravel(), sl.ravel())).astype(np.float64)
            grid = grid[grid.sum(axis=1) > 0]
            grid.setflags(write=False)
            self._grid_cache[key] = grid
        return grid

    def determine(
        self,
        request: PredictionRequest,
        knob: float = 0.0,
        mode: str = "hybrid",
        max_iterations: int = 60,
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> ConfigDecision:
        """Determine the (near-)optimal configuration for a query.

        Runs the BO loop over the candidate grid against the RF model,
        assembles the Estimated Time list from the probes, and applies the
        tradeoff knob (Eq. 4) when requested.  ``max_vm`` / ``max_sl``
        cap the candidate search below the predictor's bounds (tenant
        quota caps; see :meth:`candidate_grid`).
        """
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        started = time.perf_counter()
        candidates = self.candidate_grid(mode, max_vm=max_vm, max_sl=max_sl)

        def objective(point: np.ndarray) -> float:
            n_vm, n_sl = int(point[0]), int(point[1])
            predicted = self.predict_duration(request.feature_vector(n_vm, n_sl))
            # Eq. 2: maximise -(RF_t + delta), delta ~ N(0, sigma).
            delta = self._rng.normal(0.0, 0.01 * max(predicted, 1.0))
            return -(predicted + delta)

        optimizer = BayesianOptimizer(
            objective=objective,
            candidates=candidates,
            acquisition=self.acquisition,
            n_initial=min(4, candidates.shape[0]),
            improvement_threshold=self.bo_improvement_threshold,
            patience=self.bo_patience,
            rng=self._rng,
        )
        result = optimizer.maximize(max_iterations=max_iterations)

        # One batched forest pass covers every probe plus the winner --
        # the noise-free counterpart of the noisy Eq. 2 objective values --
        # and one batched cost pass prices the whole Estimated Time list,
        # which stays in array form end to end.
        probe_points = np.array(
            [probe.point for probe in result.history] + [result.best_point]
        )
        estimates = self.predict_durations(request.feature_matrix(probe_points))
        costs = self.estimate_costs(estimates, probe_points)
        decision_grid = DecisionGrid(
            probe_points[:-1], estimates[:-1], costs[:-1]
        )

        best_entry = EstimatedTimeEntry(
            n_vm=int(result.best_point[0]),
            n_sl=int(result.best_point[1]),
            estimated_seconds=float(estimates[-1]),
            estimated_cost=float(costs[-1]),
        )
        chosen_index = decision_grid.select_index_with_knob(
            best_entry.estimated_seconds, best_entry.estimated_cost, knob
        )
        chosen = (
            best_entry
            if chosen_index is None
            else decision_grid.entry(chosen_index)
        )
        elapsed = time.perf_counter() - started
        return ConfigDecision(
            query_id=request.query_id,
            n_vm=chosen.n_vm,
            n_sl=chosen.n_sl,
            predicted_seconds=chosen.estimated_seconds,
            estimated_cost=chosen.estimated_cost,
            knob=knob,
            best_entry=best_entry,
            chosen_entry=chosen,
            grid=decision_grid,
            n_evaluations=result.n_evaluations,
            converged=result.converged,
            inference_seconds=elapsed,
        )

    def determine_batch(
        self,
        requests: list[PredictionRequest],
        knob: float = 0.0,
        mode: str = "hybrid",
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> list[ConfigDecision]:
        """Size a whole batch of queued queries with ONE forest pass.

        Every request's full candidate grid is stacked into a single
        Random Forest ``predict`` call -- the batched counterpart of the
        per-query BO loop in :meth:`determine`.  Because the search is
        exhaustive over the grid, each decision is the true RF optimum
        (the BO loop merely approximates it with fewer probes), so the
        resulting Estimated Time lists cover the entire grid and the Eq. 4
        knob selection applies unchanged.

        Decisions are memoized per model version: requests with identical
        ``(query class, features, mode)`` reuse the cached grid decision
        instead of re-running the forest, both within one batch and
        across successive calls.  The knob is *not* part of the heavy
        key -- the ``(seconds, costs)`` grid does not depend on it -- so
        a knob sweep over the same request reuses one forest pass and
        only re-runs the cheap Eq. 4 index selection (memoized per knob
        alongside the grid).  Admission is two-touch -- a key is
        memoized from its second miss onward -- so never-repeated
        requests leave only a lightweight probation marker instead of
        filling the cache with dead Estimated Time data.

        The whole pipeline is array-native: estimates come from the
        grid-compiled engine (or one stacked forest pass), costs from one
        broadcast :meth:`estimate_costs` call, and Eq. 4 from the
        vectorised :meth:`DecisionGrid.select_index_with_knob` --
        ``EstimatedTimeEntry`` objects only materialise if a caller reads
        ``decision.et_list``.

        ``inference_seconds`` on every returned decision is the batch's
        decision time *amortised equally* across its requests (cache hits
        included), so summing it over the batch recovers the true elapsed
        wall time of this call.
        """
        if not self.is_trained:
            raise RuntimeError("the prediction model has not been trained")
        if not requests:
            return []
        started = time.perf_counter()
        eff_vm, eff_sl = self._effective_bounds(max_vm, max_sl)
        candidates = self.candidate_grid(mode, max_vm=eff_vm, max_sl=eff_sl)
        grid_size = candidates.shape[0]

        # Identical (query class, features, mode) requests under the
        # current model resolve to identical grids, so each unique key is
        # sized once -- within this batch and across calls (memoized per
        # model_version with FIFO eviction).  The chosen index for the
        # requested knob is resolved per cached grid (and memoized on it).
        knob_key = float(knob)
        keys = [
            self._decision_key(request, mode, eff_vm, eff_sl)
            for request in requests
        ]
        # Resolve into a batch-local map first: FIFO eviction below must
        # never drop an entry this batch still needs.
        resolved: dict[tuple, tuple[DecisionGrid, int, int]] = {}
        fresh_seen: set[tuple] = set()
        fresh_keys: list[tuple] = []
        fresh_requests: list[PredictionRequest] = []
        for key, request in zip(keys, requests):
            if key in resolved or key in fresh_seen:
                continue
            cached = self._decision_cache.get(key)
            if cached is not None:
                decision_grid, best_index, selections = cached
                chosen_index = selections.get(knob_key)
                if chosen_index is None:
                    chosen_index = decision_grid.select_index_with_knob(
                        float(decision_grid.seconds[best_index]),
                        float(decision_grid.costs[best_index]),
                        knob,
                    )
                    if chosen_index is None:
                        chosen_index = best_index
                    selections[knob_key] = chosen_index
                resolved[key] = (decision_grid, best_index, chosen_index)
            else:
                fresh_seen.add(key)
                fresh_keys.append(key)
                fresh_requests.append(request)

        if fresh_requests:
            estimates = self._grid_estimates(
                fresh_requests, mode, candidates, eff_vm, eff_sl
            )
            cost_matrix = self.estimate_costs(
                estimates.reshape(len(fresh_requests), grid_size), candidates
            )
            for index, key in enumerate(fresh_keys):
                # Copies, not views: a cached grid must not pin the whole
                # batch's estimate matrix in memory.
                decision_grid = DecisionGrid(
                    candidates,
                    estimates[index * grid_size : (index + 1) * grid_size].copy(),
                    cost_matrix[index].copy(),
                )
                best_index = decision_grid.best_index()
                chosen_index = decision_grid.select_index_with_knob(
                    float(decision_grid.seconds[best_index]),
                    float(decision_grid.costs[best_index]),
                    knob,
                )
                if chosen_index is None:
                    chosen_index = best_index
                resolved[key] = (decision_grid, best_index, chosen_index)
                # Two-touch admission: memoize the decision only once the
                # key has repeated, so one-shot requests leave a bare key
                # in probation instead of a full grid.
                if key in self._decision_probation:
                    del self._decision_probation[key]
                    while len(self._decision_cache) >= _DECISION_CACHE_LIMIT:
                        self._decision_cache.pop(next(iter(self._decision_cache)))
                    self._decision_cache[key] = (
                        decision_grid,
                        best_index,
                        {knob_key: chosen_index},
                    )
                else:
                    while len(self._decision_probation) >= 4 * _DECISION_CACHE_LIMIT:
                        self._decision_probation.pop(
                            next(iter(self._decision_probation))
                        )
                    self._decision_probation[key] = None
        elapsed = time.perf_counter() - started

        decisions = []
        for key, request in zip(keys, requests):
            decision_grid, best_index, chosen_index = resolved[key]
            best_entry = decision_grid.entry(best_index)
            chosen = decision_grid.entry(chosen_index)
            decisions.append(
                ConfigDecision(
                    query_id=request.query_id,
                    n_vm=chosen.n_vm,
                    n_sl=chosen.n_sl,
                    predicted_seconds=chosen.estimated_seconds,
                    estimated_cost=chosen.estimated_cost,
                    knob=knob,
                    best_entry=best_entry,
                    chosen_entry=chosen,
                    # Decisions share the read-only grid; each one
                    # materialises (and caches) its own et_list lazily.
                    grid=decision_grid,
                    n_evaluations=grid_size,
                    converged=True,
                    inference_seconds=elapsed / len(requests),
                )
            )
        return decisions

    def _grid_estimates(
        self,
        requests: list[PredictionRequest],
        mode: str,
        candidates: np.ndarray,
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> np.ndarray:
        """Grid duration estimates for fresh requests, request-major.

        Uses the grid-compiled engine (set-partition descent over masks
        precompiled against the fixed candidate grid) when the native
        kernel is available; otherwise one stacked forest pass.  Both
        produce bitwise-identical estimates.
        """
        engine = self._grid_engine(mode, max_vm=max_vm, max_sl=max_sl)
        if engine is not None:
            constants = np.empty(
                (len(requests), len(FEATURE_NAMES)), dtype=np.float64
            )
            alphas = np.empty(len(requests), dtype=np.float64)
            for index, request in enumerate(requests):
                constants[index] = FeatureVector.request_constant_row(
                    input_size_gb=request.input_size_gb,
                    start_time_epoch=request.start_time_epoch,
                    historical_duration_s=request.historical_duration_s,
                    num_waiting_apps=request.num_waiting_apps,
                )
                alphas[index] = FeatureVector.available_memory_scale(
                    request.num_waiting_apps
                )
            return engine.predict(constants, alphas)
        stacked = np.vstack(
            [request.feature_matrix(candidates) for request in requests]
        )
        return self.predict_durations(stacked)

    def _grid_engine(
        self,
        mode: str,
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> GridPack | None:
        """The grid-compiled engine for a mode, or ``None`` without one.

        Compiled lazily per ``(mode, effective bounds)`` against the
        current model version; a grid too wide for the kernel (or a
        missing native kernel) memoizes ``None`` so the fallback is not
        re-probed on every batch.
        """
        if not GridPack.available():
            return None
        eff_vm, eff_sl = self._effective_bounds(max_vm, max_sl)
        key = (mode, eff_vm, eff_sl)
        cached = self._grid_engine_cache.get(key)
        if cached is not None and cached[1] == self.model_version:
            return cached[0]
        candidates = self.candidate_grid(mode, max_vm=eff_vm, max_sl=eff_sl)
        try:
            column_values, scaled_columns = FeatureVector.grid_columns(
                candidates[:, 0], candidates[:, 1]
            )
            engine = GridPack(
                self._forest.packed(), column_values, scaled_columns
            )
        except ValueError:
            engine = None
        self._grid_engine_cache[key] = (engine, self.model_version)
        return engine

    def _decision_key(
        self, request: PredictionRequest, mode: str, max_vm: int, max_sl: int
    ) -> tuple:
        """Everything a batched grid's ``(seconds, costs)`` depends on.

        Deliberately knob-free: the knob only affects the Eq. 4 index
        selection, which is memoized per knob next to the cached grid.
        The *effective* search bounds are part of the key (quota-capped
        batches must never reuse an unconstrained grid or vice versa);
        ``relay`` is a public mutable attribute, so it is part of the key
        even though it rarely changes.
        """
        return (
            self.model_version,
            mode,
            max_vm,
            max_sl,
            self.relay,
            request.query_id,
            request.input_size_gb,
            request.start_time_epoch,
            request.historical_duration_s,
            request.num_waiting_apps,
        )
