"""The :class:`Smartpick` facade -- the library's main entry point.

Typical use::

    from repro.core import Smartpick, SmartpickProperties
    from repro.workloads import get_query

    props = SmartpickProperties(provider="AWS", relay=True, knob=0.0)
    system = Smartpick(properties=props, rng=7)
    system.bootstrap([get_query(q) for q in (
        "tpcds-q11", "tpcds-q49", "tpcds-q68", "tpcds-q74", "tpcds-q82",
    )])
    outcome = system.submit(get_query("tpcds-q11"))
    print(outcome.summary())

``bootstrap`` is the CLI initial-training step of Section 5: it runs a
handful of random configurations per representational workload, applies
the +-5 % / ~10x data-burst heuristic and fits the first model.  ``submit``
then exercises the full Figure 3 workflow including similarity checking,
knob application, relay execution and event-driven retraining.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cloud.pool import TenantRegistry
from repro.cloud.pricing import PriceBook, get_prices
from repro.cloud.providers import ProviderProfile, get_provider
from repro.core.config import SmartpickProperties
from repro.core.history import ExecutionRecord, HistoryServer
from repro.core.job import JobInitializer, SubmissionOutcome
from repro.core.monitor import MonitorAndFeatureExtraction, map_task_count
from repro.core.predictor import WorkloadPredictor
from repro.core.retrain import BackgroundRetrainer, ModelStore
from repro.core.similarity import SimilarityChecker
from repro.engine.dag import QuerySpec
from repro.engine.policies import NoEarlyTermination, RelayPolicy
from repro.engine.runner import run_query

__all__ = ["Smartpick", "BootstrapReport"]


@dataclasses.dataclass
class BootstrapReport:
    """What initial training produced."""

    query_ids: tuple[str, ...]
    n_runs: int
    n_training_samples: int
    model_version: int
    oob_rmse: float | None


class Smartpick:
    """Serverless-enabled data analytics with workload prediction.

    Parameters
    ----------
    properties:
        The Table 4 property set; defaults match the paper.
    provider_profile / prices:
        Optional overrides of the provider performance profile and price
        book (the profile named in ``properties.provider`` otherwise).
    max_vm, max_sl:
        Search-grid bounds for resource determination.
    rng:
        Seed or generator from which every stochastic component derives.
    tenants:
        Optional multi-tenant registry (quotas, fair-share weights) the
        serving layer defaults to; ``None`` keeps the system effectively
        single-tenant.
    """

    def __init__(
        self,
        properties: SmartpickProperties | None = None,
        provider_profile: ProviderProfile | None = None,
        prices: PriceBook | None = None,
        max_vm: int = 12,
        max_sl: int = 12,
        rng: np.random.Generator | int | None = None,
        tenants: "TenantRegistry | None" = None,
    ) -> None:
        self.properties = properties or SmartpickProperties()
        self.provider = provider_profile or get_provider(self.properties.provider)
        self.prices = prices or get_prices(self.provider.name)
        self.tenants = tenants
        # smartpick.cloud.compute.instanceFamily: larger families trade
        # extra cost for memory locality and faster cores (Section 7).
        from repro.cloud.families import apply_family

        self.provider, self.prices = apply_family(
            self.provider, self.prices, self.properties.instance_family
        )
        self._rng = np.random.default_rng(rng)

        self.history = HistoryServer(
            max_records_per_query=self.properties.history_window
        )
        self.similarity = SimilarityChecker()
        self.predictor = WorkloadPredictor(
            provider=self.provider,
            prices=self.prices,
            relay=self.properties.relay,
            max_vm=max_vm,
            max_sl=max_sl,
            rng=self._rng,
        )
        self.mfe = MonitorAndFeatureExtraction(
            history=self.history,
            similarity=self.similarity,
            properties=self.properties,
        )
        self.model_store = ModelStore()
        self.retrainer = BackgroundRetrainer(
            predictor=self.predictor,
            history=self.history,
            properties=self.properties,
            model_store=self.model_store,
        )
        self.job_initializer = JobInitializer(
            predictor=self.predictor,
            mfe=self.mfe,
            similarity=self.similarity,
            retrainer=self.retrainer,
            properties=self.properties,
            provider=self.provider,
            prices=self.prices,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    # Initial training (the Section 5 CLI step)
    # ------------------------------------------------------------------

    def bootstrap(
        self,
        queries: list[QuerySpec],
        n_configs_per_query: int = 20,
        min_workers: int = 4,
    ) -> BootstrapReport:
        """Run sample configurations and fit the first prediction model.

        For each representational workload, ``n_configs_per_query`` random
        ``{nVM, nSL}`` configurations are executed (the paper uses 20 per
        query); the records seed the History Server, the Similarity
        Checker learns each query's SQL attributes, and the Random Forest
        is fitted on the data-burst-augmented sample set.
        """
        if not queries:
            raise ValueError("bootstrap needs at least one query")
        if n_configs_per_query < 1:
            raise ValueError("n_configs_per_query must be at least 1")

        n_runs = 0
        for query in queries:
            durations_costs = []
            for n_vm, n_sl in self._sample_configs(
                n_configs_per_query, min_workers
            ):
                result = self._execute(query, n_vm, n_sl)
                durations_costs.append(result)
                n_runs += 1
            # The query's historical-duration anchor is the mean over its
            # bootstrap runs; every record carries it so training features
            # match what prediction-time features will look like.
            mean_duration = float(
                np.mean([r.completion_seconds for r in durations_costs])
            )
            for result in durations_costs:
                features = self._bootstrap_features(
                    query, result.n_vm, result.n_sl, mean_duration
                )
                self.history.record(
                    ExecutionRecord(
                        query_id=query.query_id,
                        features=features,
                        duration_s=result.completion_seconds,
                        cost_dollars=result.cost_dollars,
                        provider=result.provider,
                        relay=self.properties.relay,
                    )
                )
            self.similarity.register_sql(
                query.query_id, query.sql, map_task_count(query)
            )

        query_ids = tuple(query.query_id for query in queries)
        dataset = self.history.as_dataset(query_ids)
        self.predictor.fit(dataset, query_ids=query_ids, augment=True)
        self.model_store.publish(self.predictor)
        return BootstrapReport(
            query_ids=query_ids,
            n_runs=n_runs,
            n_training_samples=self.predictor.training_set_size,
            model_version=self.predictor.model_version,
            oob_rmse=self.predictor.forest.oob_rmse_,
        )

    def _sample_configs(
        self, count: int, min_workers: int
    ) -> list[tuple[int, int]]:
        """Random configurations, stratified across the search grid.

        A fifth of the samples are pure-VM and a fifth pure-SL so the model
        sees the grid edges the VM-only / SL-only determinations search;
        the rest are uniform mixed configurations.  ``min_workers`` keeps
        degenerate near-empty clusters (whose extreme durations would
        dominate the model's loss) out of the sample set.
        """
        max_vm, max_sl = self.predictor.max_vm, self.predictor.max_sl
        min_workers = max(1, min(min_workers, max(max_vm, max_sl)))
        configs: list[tuple[int, int]] = []
        n_pure = max(count // 5, 1)
        if max_vm >= min_workers:
            for _ in range(n_pure):
                configs.append(
                    (int(self._rng.integers(min_workers, max_vm + 1)), 0)
                )
        if max_sl >= min_workers:
            for _ in range(n_pure):
                configs.append(
                    (0, int(self._rng.integers(min_workers, max_sl + 1)))
                )
        while len(configs) < count:
            n_vm = int(self._rng.integers(0, max_vm + 1))
            n_sl = int(self._rng.integers(0, max_sl + 1))
            if n_vm + n_sl < min_workers:
                continue
            configs.append((n_vm, n_sl))
        return configs[:count]

    def _bootstrap_features(self, query, n_vm, n_sl, mean_duration):
        from repro.core.features import FeatureVector

        return FeatureVector.build(
            n_vm=n_vm,
            n_sl=n_sl,
            input_size_gb=query.input_gb,
            start_time_epoch=self.history.next_epoch(),
            historical_duration_s=mean_duration,
        )

    def _execute(self, query: QuerySpec, n_vm: int, n_sl: int):
        if self.properties.relay and n_vm > 0 and n_sl > 0:
            policy = RelayPolicy()
        else:
            policy = NoEarlyTermination()
        return run_query(
            query,
            n_vm=n_vm,
            n_sl=n_sl,
            provider=self.provider,
            prices=self.prices,
            policy=policy,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    # Query submission (the Figure 3 workflow)
    # ------------------------------------------------------------------

    def submit(
        self,
        query: QuerySpec,
        knob: float | None = None,
        mode: str = "hybrid",
        num_waiting_apps: int = 0,
    ) -> SubmissionOutcome:
        """Predict, execute and learn from one incoming query.

        ``knob`` overrides ``smartpick.cloud.compute.knob`` for this
        submission; ``mode`` restricts the search space (``"vm-only"`` /
        ``"sl-only"`` mimic the Section 6.3 baselines).
        """
        if not self.predictor.is_trained:
            raise RuntimeError("bootstrap the system before submitting queries")
        return self.job_initializer.submit(
            query, knob=knob, mode=mode, num_waiting_apps=num_waiting_apps
        )

    def submit_many(
        self,
        queries: list[QuerySpec],
        knob: float | None = None,
        mode: str = "hybrid",
    ) -> list[SubmissionOutcome]:
        """Predict and execute a batch of queued arrivals.

        The predictor's grid search is vectorized across the whole batch
        (one forest pass -- through the grid-compiled engine when the
        native kernel is available -- sizes every query's candidate grid
        instead of a per-query BO loop), then the queries execute in
        order, each seeing the earlier ones as waiting applications.
        :class:`~repro.core.serving.ServingSimulator` routes coalesced
        arrival groups through the same path via
        :meth:`~repro.core.job.JobInitializer.decide_many`.
        """
        if not self.predictor.is_trained:
            raise RuntimeError("bootstrap the system before submitting queries")
        return self.job_initializer.submit_many(queries, knob=knob, mode=mode)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rng(self) -> np.random.Generator:
        """The master generator every stochastic component derives from."""
        return self._rng

    @property
    def known_query_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self.predictor.known_queries))

    def describe(self) -> str:
        return (
            f"Smartpick(provider={self.provider.name}, "
            f"relay={self.properties.relay}, knob={self.properties.knob:g}, "
            f"model_version={self.predictor.model_version}, "
            f"history={len(self.history)} records)"
        )
