"""The Job Initializer (JI): the Figure 3 workflow, end to end.

Step 0: a query arrives.  Step 1: JI asks WP for the optimal numbers of
VMs and SLs.  Step 2: unknown queries detour through the Similarity
Checker.  Steps 3-5: MFE assembles model inputs from the History Server.
Step 6: WP returns the configuration (knob applied).  Steps 7-8: the
Resource Manager spawns the instances and the query executes.  Step 9: MFE
examines the prediction error on completion and Background Re-train fires
when it exceeds the trigger.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.cloud.providers import ProviderProfile
from repro.core.config import SmartpickProperties
from repro.core.history import ExecutionRecord
from repro.core.monitor import MonitorAndFeatureExtraction, map_task_count
from repro.core.predictor import ConfigDecision, WorkloadPredictor
from repro.core.retrain import BackgroundRetrainer, RetrainEvent
from repro.core.similarity import SimilarityChecker
from repro.engine.dag import QuerySpec
from repro.engine.policies import (
    NoEarlyTermination,
    RelayPolicy,
    TerminationPolicy,
)
from repro.engine.runner import QueryRunResult, run_query

__all__ = ["JobInitializer", "SubmissionOutcome"]


@dataclasses.dataclass
class SubmissionOutcome:
    """Everything one query submission produced."""

    query_id: str
    decision: ConfigDecision
    result: QueryRunResult
    record: ExecutionRecord
    predicted_seconds: float
    actual_seconds: float
    is_alien: bool
    similar_query_id: str | None
    retrain_event: RetrainEvent | None

    @property
    def error_seconds(self) -> float:
        return abs(self.actual_seconds - self.predicted_seconds)

    @property
    def cost_dollars(self) -> float:
        return self.result.cost_dollars

    def summary(self) -> str:
        alien = f" (alien, via {self.similar_query_id})" if self.is_alien else ""
        retrained = ", retrained" if self.retrain_event else ""
        return (
            f"{self.query_id}{alien}: predicted {self.predicted_seconds:.1f}s, "
            f"actual {self.actual_seconds:.1f}s, "
            f"{self.result.cost_cents:.2f} cents{retrained}"
        )


class JobInitializer:
    """Coordinates WP, SC, MFE, HS, RM and Background Re-train per query."""

    def __init__(
        self,
        predictor: WorkloadPredictor,
        mfe: MonitorAndFeatureExtraction,
        similarity: SimilarityChecker,
        retrainer: BackgroundRetrainer,
        properties: SmartpickProperties,
        provider: ProviderProfile,
        prices: PriceBook,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.predictor = predictor
        self.mfe = mfe
        self.similarity = similarity
        self.retrainer = retrainer
        self.properties = properties
        self.provider = provider
        self.prices = prices
        self._rng = np.random.default_rng(rng)

    def _execution_policy(self, n_vm: int, n_sl: int) -> TerminationPolicy:
        if self.properties.relay and n_vm > 0 and n_sl > 0:
            return RelayPolicy()
        return NoEarlyTermination()

    def submit(
        self,
        query: QuerySpec,
        knob: float | None = None,
        mode: str = "hybrid",
        num_waiting_apps: int = 0,
    ) -> SubmissionOutcome:
        """Run the full workflow for one incoming query."""
        if knob is None:
            knob = self.properties.knob

        # Steps 1-5: assemble inputs (Similarity Checker for aliens) and
        # determine the configuration.
        context = self.mfe.build_request(
            query, self.predictor, num_waiting_apps=num_waiting_apps
        )
        decision = self.predictor.determine(context.request, knob=knob, mode=mode)

        # Steps 7-8: spawn and execute.
        policy = self._execution_policy(decision.n_vm, decision.n_sl)
        result = run_query(
            query,
            n_vm=decision.n_vm,
            n_sl=decision.n_sl,
            provider=self.provider,
            prices=self.prices,
            policy=policy,
            rng=self._rng,
        )

        # Step 9: record, monitor the error, maybe retrain.
        record = self.mfe.record_run(query, context, result)
        retrain_event = self.retrainer.observe(
            query.query_id,
            predicted_s=decision.predicted_seconds,
            actual_s=result.completion_seconds,
        )
        if retrain_event is not None and not self.similarity.__contains__(
            query.query_id
        ):
            # The model now knows this workload; future similarity searches
            # may return it as a neighbour.
            self.similarity.register_sql(
                query.query_id, query.sql, map_task_count(query)
            )
        return SubmissionOutcome(
            query_id=query.query_id,
            decision=decision,
            result=result,
            record=record,
            predicted_seconds=decision.predicted_seconds,
            actual_seconds=result.completion_seconds,
            is_alien=context.is_alien,
            similar_query_id=context.similar_query_id,
            retrain_event=retrain_event,
        )
