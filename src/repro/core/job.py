"""The Job Initializer (JI): the Figure 3 workflow, end to end.

Step 0: a query arrives.  Step 1: JI asks WP for the optimal numbers of
VMs and SLs.  Step 2: unknown queries detour through the Similarity
Checker.  Steps 3-5: MFE assembles model inputs from the History Server.
Step 6: WP returns the configuration (knob applied).  Steps 7-8: the
Resource Manager spawns the instances and the query executes.  Step 9: MFE
examines the prediction error on completion and Background Re-train fires
when it exceeds the trigger.

The workflow is exposed in two granularities: :meth:`JobInitializer.submit`
runs steps 1-9 synchronously on a private cluster (the paper's model),
while :meth:`decide` / :meth:`finalize` split the pre-execution and
post-execution halves so trace serving can run many queries *concurrently*
on a shared pool -- decide at arrival, execute as interleaved simulator
events, finalize at completion.  :meth:`submit_many` batches queued
arrivals through one vectorized grid search.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.cloud.providers import ProviderProfile
from repro.core.config import SmartpickProperties
from repro.core.history import ExecutionRecord
from repro.core.monitor import (
    MonitorAndFeatureExtraction,
    RequestContext,
    map_task_count,
)
from repro.core.predictor import ConfigDecision, WorkloadPredictor
from repro.core.retrain import BackgroundRetrainer, RetrainEvent
from repro.core.similarity import SimilarityChecker
from repro.engine.dag import QuerySpec
from repro.engine.policies import (
    NoEarlyTermination,
    RelayPolicy,
    TerminationPolicy,
)
from repro.engine.runner import QueryRunResult, run_query

__all__ = ["JobInitializer", "SubmissionOutcome"]


@dataclasses.dataclass
class SubmissionOutcome:
    """Everything one query submission produced."""

    query_id: str
    decision: ConfigDecision
    result: QueryRunResult
    record: ExecutionRecord
    predicted_seconds: float
    actual_seconds: float
    is_alien: bool
    similar_query_id: str | None
    retrain_event: RetrainEvent | None

    @property
    def error_seconds(self) -> float:
        return abs(self.actual_seconds - self.predicted_seconds)

    @property
    def cost_dollars(self) -> float:
        return self.result.cost_dollars

    def summary(self) -> str:
        alien = f" (alien, via {self.similar_query_id})" if self.is_alien else ""
        retrained = ", retrained" if self.retrain_event else ""
        return (
            f"{self.query_id}{alien}: predicted {self.predicted_seconds:.1f}s, "
            f"actual {self.actual_seconds:.1f}s, "
            f"{self.result.cost_cents:.2f} cents{retrained}"
        )


class JobInitializer:
    """Coordinates WP, SC, MFE, HS, RM and Background Re-train per query."""

    def __init__(
        self,
        predictor: WorkloadPredictor,
        mfe: MonitorAndFeatureExtraction,
        similarity: SimilarityChecker,
        retrainer: BackgroundRetrainer,
        properties: SmartpickProperties,
        provider: ProviderProfile,
        prices: PriceBook,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.predictor = predictor
        self.mfe = mfe
        self.similarity = similarity
        self.retrainer = retrainer
        self.properties = properties
        self.provider = provider
        self.prices = prices
        self._rng = np.random.default_rng(rng)

    def execution_policy(self, n_vm: int, n_sl: int) -> TerminationPolicy:
        """The termination policy a configuration executes under."""
        if self.properties.relay and n_vm > 0 and n_sl > 0:
            return RelayPolicy()
        return NoEarlyTermination()

    # ------------------------------------------------------------------
    # Workflow halves (steps 1-6 and step 9)
    # ------------------------------------------------------------------

    def decide(
        self,
        query: QuerySpec,
        knob: float | None = None,
        mode: str = "hybrid",
        num_waiting_apps: int = 0,
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> tuple[RequestContext, ConfigDecision]:
        """Steps 1-6: assemble inputs (Similarity Checker for aliens) and
        determine the configuration.

        ``max_vm`` / ``max_sl`` cap the candidate search (quota-priced
        sizing: the submitting tenant's lease quota bounds the grid).
        """
        if knob is None:
            knob = self.properties.knob
        context = self.mfe.build_request(
            query, self.predictor, num_waiting_apps=num_waiting_apps
        )
        decision = self.predictor.determine(
            context.request, knob=knob, mode=mode, max_vm=max_vm, max_sl=max_sl
        )
        return context, decision

    def decide_many(
        self,
        queries: list[QuerySpec],
        knob: float | None = None,
        mode: str = "hybrid",
        num_waiting_apps: int = 0,
        max_vm: int | None = None,
        max_sl: int | None = None,
    ) -> list[tuple[RequestContext, ConfigDecision]]:
        """Steps 1-6 for a whole group of queued arrivals at once.

        All queries are sized through one vectorized grid search
        (:meth:`WorkloadPredictor.determine_batch`); query ``i`` sees the
        ``num_waiting_apps`` baseline plus the ``i`` group members ahead
        of it as waiting applications, exactly as if the group had been
        decided one arrival at a time.  Each returned decision carries
        the group's decision latency amortised equally across members.
        """
        if knob is None:
            knob = self.properties.knob
        contexts = [
            self.mfe.build_request(
                query, self.predictor, num_waiting_apps=num_waiting_apps + index
            )
            for index, query in enumerate(queries)
        ]
        decisions = self.predictor.determine_batch(
            [context.request for context in contexts],
            knob=knob,
            mode=mode,
            max_vm=max_vm,
            max_sl=max_sl,
        )
        return list(zip(contexts, decisions))

    def finalize(
        self,
        query: QuerySpec,
        context: RequestContext,
        decision: ConfigDecision,
        result: QueryRunResult,
        observe_error: bool = True,
    ) -> SubmissionOutcome:
        """Step 9: record the run, monitor the error, maybe retrain.

        ``observe_error=False`` records the run for training but skips the
        retrain trigger -- used when the executed configuration differs
        from the predicted one (a pool clamped the request), where the
        prediction error says nothing about model quality.
        """
        record = self.mfe.record_run(query, context, result)
        retrain_event = None
        if observe_error:
            retrain_event = self.retrainer.observe(
                query.query_id,
                predicted_s=decision.predicted_seconds,
                actual_s=result.completion_seconds,
            )
        if retrain_event is not None and query.query_id not in self.similarity:
            # The model now knows this workload; future similarity searches
            # may return it as a neighbour.
            self.similarity.register_sql(
                query.query_id, query.sql, map_task_count(query)
            )
        return SubmissionOutcome(
            query_id=query.query_id,
            decision=decision,
            result=result,
            record=record,
            predicted_seconds=decision.predicted_seconds,
            actual_seconds=result.completion_seconds,
            is_alien=context.is_alien,
            similar_query_id=context.similar_query_id,
            retrain_event=retrain_event,
        )

    # ------------------------------------------------------------------
    # One-call submission (steps 1-9 on a private cluster)
    # ------------------------------------------------------------------

    def submit(
        self,
        query: QuerySpec,
        knob: float | None = None,
        mode: str = "hybrid",
        num_waiting_apps: int = 0,
    ) -> SubmissionOutcome:
        """Run the full workflow for one incoming query."""
        context, decision = self.decide(
            query, knob=knob, mode=mode, num_waiting_apps=num_waiting_apps
        )

        # Steps 7-8: spawn and execute.
        policy = self.execution_policy(decision.n_vm, decision.n_sl)
        result = run_query(
            query,
            n_vm=decision.n_vm,
            n_sl=decision.n_sl,
            provider=self.provider,
            prices=self.prices,
            policy=policy,
            rng=self._rng,
        )
        return self.finalize(query, context, decision, result)

    # ------------------------------------------------------------------
    # Batched submission (vectorized grid search)
    # ------------------------------------------------------------------

    def submit_many(
        self,
        queries: list[QuerySpec],
        knob: float | None = None,
        mode: str = "hybrid",
    ) -> list[SubmissionOutcome]:
        """Size a batch of queued arrivals with ONE vectorized grid search.

        All pending queries' feature grids are stacked into a single
        Random Forest ``predict`` call (exhaustive over the candidate
        grid, so it is at least as accurate as the per-query BO loop),
        then each query executes in arrival order.  Queries later in the
        batch see the earlier ones as waiting applications, matching the
        ``num-waiting-apps`` feature of Table 3.
        """
        if not queries:
            return []
        decided = self.decide_many(queries, knob=knob, mode=mode)
        outcomes = []
        for query, (context, decision) in zip(queries, decided):
            policy = self.execution_policy(decision.n_vm, decision.n_sl)
            result = run_query(
                query,
                n_vm=decision.n_vm,
                n_sl=decision.n_sl,
                provider=self.provider,
                prices=self.prices,
                policy=policy,
                rng=self._rng,
            )
            outcomes.append(self.finalize(query, context, decision, result))
        return outcomes
