"""The workload-prediction feature schema (Table 3 of the paper).

Table 3 lists the features Smartpick's Random Forest consumes:

=====================  ==================================================
feature                comment
=====================  ==================================================
instances              number of VMs and SLs used (two columns here)
input-size             size of input in bytes (stored as GB for scale)
start-time-epoch       initial job submit time in epoch
total-memory           total memory of available workers
available-memory       available memory of available workers
memory-per-executor    memory assigned to each executor
num-waiting-apps       number of applications in wait state
total-available-cores  number of available cores
query-duration         completion time of a given query
=====================  ==================================================

``query-duration`` plays a double role in the paper: it is the training
*label*, and for prediction "the query-duration feature will act as the
best estimation for completion time" of the (possibly alien) query.  We
realise that as ``historical_duration_s``: the mean completion time this
query (or, for aliens, its Similarity-Checker neighbour) has shown in the
History Server.  It is how query identity reaches the model.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["FEATURE_NAMES", "INTEGER_FEATURE_COLUMNS", "FeatureVector"]

FEATURE_NAMES: tuple[str, ...] = (
    "n_vm",
    "n_sl",
    "input_size_gb",
    "start_time_epoch",
    "total_memory_gb",
    "available_memory_gb",
    "memory_per_executor_gb",
    "num_waiting_apps",
    "total_available_cores",
    "historical_duration_s",
)

#: Columns that must stay integral under data-burst augmentation.
INTEGER_FEATURE_COLUMNS: tuple[int, ...] = (
    FEATURE_NAMES.index("n_vm"),
    FEATURE_NAMES.index("n_sl"),
    FEATURE_NAMES.index("num_waiting_apps"),
    FEATURE_NAMES.index("total_available_cores"),
)

_WORKER_MEMORY_GB = 2.0
_WORKER_VCPUS = 2


@dataclasses.dataclass(frozen=True)
class FeatureVector:
    """One Table 3 feature vector (the model input)."""

    n_vm: int
    n_sl: int
    input_size_gb: float
    start_time_epoch: float
    total_memory_gb: float
    available_memory_gb: float
    memory_per_executor_gb: float
    num_waiting_apps: int
    total_available_cores: int
    historical_duration_s: float

    def __post_init__(self) -> None:
        if self.n_vm < 0 or self.n_sl < 0:
            raise ValueError("instance counts must be non-negative")
        if self.n_vm + self.n_sl == 0:
            raise ValueError("a configuration needs at least one instance")
        if self.input_size_gb < 0:
            raise ValueError("input_size_gb must be non-negative")
        if self.historical_duration_s < 0:
            raise ValueError("historical_duration_s must be non-negative")

    def as_array(self) -> np.ndarray:
        """The model-facing row, ordered as :data:`FEATURE_NAMES`."""
        return np.array(
            [
                float(self.n_vm),
                float(self.n_sl),
                self.input_size_gb,
                self.start_time_epoch,
                self.total_memory_gb,
                self.available_memory_gb,
                self.memory_per_executor_gb,
                float(self.num_waiting_apps),
                float(self.total_available_cores),
                self.historical_duration_s,
            ],
            dtype=np.float64,
        )

    @classmethod
    def build_matrix(
        cls,
        n_vm: np.ndarray,
        n_sl: np.ndarray,
        input_size_gb: float,
        start_time_epoch: float,
        historical_duration_s: float,
        num_waiting_apps: int = 0,
        memory_per_executor_gb: float = _WORKER_MEMORY_GB,
        worker_vcpus: int = _WORKER_VCPUS,
    ) -> np.ndarray:
        """Vectorised :meth:`build`: arrays of ``{nVM, nSL}`` candidates
        become one ``(n, len(FEATURE_NAMES))`` model-input matrix.

        Used by the predictor's grid search so a whole candidate grid (or
        several queued queries' grids) feeds the Random Forest in a single
        ``predict`` call instead of one call per configuration.
        """
        n_vm = np.asarray(n_vm, dtype=np.float64)
        n_sl = np.asarray(n_sl, dtype=np.float64)
        if n_vm.shape != n_sl.shape:
            raise ValueError("n_vm and n_sl must have matching shapes")
        if np.any(n_vm < 0) or np.any(n_sl < 0):
            raise ValueError("instance counts must be non-negative")
        n_workers = n_vm + n_sl
        if np.any(n_workers <= 0):
            raise ValueError("every configuration needs at least one instance")
        if input_size_gb < 0:
            raise ValueError("input_size_gb must be non-negative")
        if historical_duration_s < 0:
            raise ValueError("historical_duration_s must be non-negative")
        total_memory = n_workers * memory_per_executor_gb
        available = total_memory * cls.available_memory_scale(num_waiting_apps)
        count = n_vm.shape[0]
        return np.column_stack(
            [
                n_vm,
                n_sl,
                np.full(count, input_size_gb, dtype=np.float64),
                np.full(count, start_time_epoch, dtype=np.float64),
                total_memory,
                available,
                np.full(count, memory_per_executor_gb, dtype=np.float64),
                np.full(count, float(num_waiting_apps), dtype=np.float64),
                n_workers * float(worker_vcpus),
                np.full(count, historical_duration_s, dtype=np.float64),
            ]
        )

    @staticmethod
    def available_memory_scale(num_waiting_apps: int) -> float:
        """The available-memory shrink factor for a waiting-app count.

        Shared by :meth:`build` / :meth:`build_matrix` and the
        grid-compiled inference path
        (:class:`~repro.ml.grid_inference.GridPack`), which relies on the
        ``available_memory_gb`` column being exactly
        ``total_memory * scale`` -- keep the expression in one place so
        the two can never drift.
        """
        return max(1.0 - 0.05 * num_waiting_apps, 0.0)

    @classmethod
    def grid_columns(
        cls,
        n_vm: np.ndarray,
        n_sl: np.ndarray,
        memory_per_executor_gb: float = _WORKER_MEMORY_GB,
        worker_vcpus: int = _WORKER_VCPUS,
    ) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
        """How a fixed candidate grid occupies the feature columns.

        Returns ``(column_values, scaled_columns)`` describing the
        :meth:`build_matrix` output for a grid of ``{nVM, nSL}``
        candidates: ``column_values`` maps the request-independent
        varying columns to their exact per-row float64 values, and
        ``scaled_columns`` maps the available-memory column to its base
        (the cell value is ``base * available_memory_scale(request)``).
        Every other column is a per-request constant.  The values are
        computed with the same operations as :meth:`build_matrix`, so
        they are bitwise equal to the matrix it would build.
        """
        n_vm = np.asarray(n_vm, dtype=np.float64)
        n_sl = np.asarray(n_sl, dtype=np.float64)
        n_workers = n_vm + n_sl
        total_memory = n_workers * memory_per_executor_gb
        column_values = {
            FEATURE_NAMES.index("n_vm"): n_vm,
            FEATURE_NAMES.index("n_sl"): n_sl,
            FEATURE_NAMES.index("total_memory_gb"): total_memory,
            FEATURE_NAMES.index("total_available_cores"): n_workers
            * float(worker_vcpus),
        }
        scaled_columns = {
            FEATURE_NAMES.index("available_memory_gb"): total_memory
        }
        return column_values, scaled_columns

    @classmethod
    def request_constant_row(
        cls,
        input_size_gb: float,
        start_time_epoch: float,
        historical_duration_s: float,
        num_waiting_apps: int = 0,
        memory_per_executor_gb: float = _WORKER_MEMORY_GB,
    ) -> np.ndarray:
        """The per-request constant cells of a grid feature matrix.

        Grid-varying and scaled slots are left zero -- grid-compiled
        inference reads only the constant columns (the complement of
        :meth:`grid_columns`), with the exact float64 values
        :meth:`build_matrix` would have placed in them.
        """
        row = np.zeros(len(FEATURE_NAMES), dtype=np.float64)
        row[FEATURE_NAMES.index("input_size_gb")] = input_size_gb
        row[FEATURE_NAMES.index("start_time_epoch")] = start_time_epoch
        row[FEATURE_NAMES.index("memory_per_executor_gb")] = (
            memory_per_executor_gb
        )
        row[FEATURE_NAMES.index("num_waiting_apps")] = float(num_waiting_apps)
        row[FEATURE_NAMES.index("historical_duration_s")] = (
            historical_duration_s
        )
        return row

    @classmethod
    def build(
        cls,
        n_vm: int,
        n_sl: int,
        input_size_gb: float,
        start_time_epoch: float,
        historical_duration_s: float,
        num_waiting_apps: int = 0,
        memory_per_executor_gb: float = _WORKER_MEMORY_GB,
        worker_vcpus: int = _WORKER_VCPUS,
    ) -> "FeatureVector":
        """Derive the cluster-shape features from a configuration.

        Memory and core totals follow mechanically from the instance counts
        (every evaluation worker offers 2 vCPUs / 2 GB); waiting
        applications consume a share of the nominally available memory.
        """
        n_workers = n_vm + n_sl
        total_memory = n_workers * memory_per_executor_gb
        available = total_memory * cls.available_memory_scale(num_waiting_apps)
        return cls(
            n_vm=n_vm,
            n_sl=n_sl,
            input_size_gb=input_size_gb,
            start_time_epoch=start_time_epoch,
            total_memory_gb=total_memory,
            available_memory_gb=available,
            memory_per_executor_gb=memory_per_executor_gb,
            num_waiting_apps=num_waiting_apps,
            total_available_cores=n_workers * worker_vcpus,
            historical_duration_s=historical_duration_s,
        )
