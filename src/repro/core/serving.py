"""Trace-driven serving: a day in the life of a Smartpick deployment.

The evaluation exercises queries one at a time; a deployed data analytics
system instead faces a *stream* of ad-hoc arrivals (Section 2.1).  The
:class:`ServingSimulator` replays one or many workload traces through a
bootstrapped Smartpick **inside one shared discrete-event simulation**:

- every arrival is scheduled as an event at its trace time and submitted
  through the full Figure 3 workflow when it fires,
- all queries execute concurrently against one shared
  :class:`~repro.cloud.pool.ClusterPool` -- overlapping arrivals contend
  for pool capacity, queue under the pool's grant policy when it
  saturates, and (with keep-alive enabled) inherit each other's
  still-warm workers,
- the number of still-in-flight earlier queries feeds the
  ``num-waiting-apps`` feature of Table 3,
- aliens, retrains, per-query bills, queueing delays and the pool's
  warm-start behaviour are accounted into a :class:`ServingReport` with
  latency percentiles, total cost (including keep-alive spend) and SLO
  attainment.

**Multi-tenant serving** (:meth:`ServingSimulator.replay_multi`) replays
several ``(tenant, trace)`` pairs as one interleaved event stream over
the same shared pool.  A :class:`~repro.cloud.pool.TenantRegistry`
supplies per-tenant fair-share weights and quotas: concurrently-leased
worker caps are enforced by the pool, while ``max_in_flight`` query caps
are enforced here by an admission gate (an arrival past the cap waits,
and the wait is accounted as ``admission_delay_s``).  The report then
carries per-tenant slices (:meth:`ServingReport.for_tenant`), a Jain
fairness index, quota-throttle delays, and a chargeback table that
partitions the pool's total bill -- keep-alive included -- across
tenants.

**Prediction-driven resource management** closes the serving ->
forecaster -> pool loop: every arrival's query class (from
:meth:`~repro.core.predictor.WorkloadPredictor.query_class`) and routed
shard are fed to forecast-aware autoscalers such as
:class:`~repro.core.forecast.PredictiveKeepAlive` -- per-shard policies
go in ``shard_autoscalers`` -- and ``batch_window_s="auto"`` lets an
:class:`~repro.core.forecast.AdaptiveBatchWindow` tune the coalescing
window from the observed arrival rate and measured decision latency.

The default pool is cold (no keep-alive) and wide enough that typical
traces do not contend, which reproduces the paper's
fresh-instances-per-query serving model; a ``RuntimeWarning`` fires if a
heavy trace saturates it anyway.  Pass a tighter
:class:`~repro.cloud.pool.PoolConfig` or an autoscaler to study warm
starts and saturation deliberately.
"""

from __future__ import annotations

import collections
import dataclasses
import functools
import math
import time
import warnings
import zlib
from typing import Iterable, Mapping, NamedTuple

import numpy as np

from repro.analysis.sketches import ExactSum, ReservoirQuantiles
from repro.cloud.faults import FaultInjector, FaultPlan
from repro.cloud.pool import (
    DEFAULT_TENANT,
    AutoscalerPolicy,
    ClusterPool,
    GrantPolicy,
    PoolConfig,
    PoolStats,
    ShardRouter,
    TenantRegistry,
)
from repro.core.epochs import FleetPlanner, ForecastAwareRouter
from repro.core.forecast import AdaptiveBatchWindow
from repro.core.job import SubmissionOutcome
from repro.core.smartpick import Smartpick
from repro.engine.plan import PlanRunner, StagePlan, plan_supports
from repro.engine.runner import QueryExecution, RetryPolicy, launch_query
from repro.engine.simulator import DEFAULT_EVENT_BUDGET, Simulator
from repro.engine.task import TaskDurationModel
from repro.workloads import get_query
from repro.workloads.trace import (
    ColumnarTrace,
    TraceEvent,
    WorkloadTrace,
    merge_arrival_columns,
)

__all__ = [
    "DroppedQuery",
    "ServedQuery",
    "ServingStream",
    "ServingReport",
    "ServingSimulator",
]

#: Reservoir size of every streaming-report sketch: percentiles are exact
#: up to this many observations and carry ~1/sqrt(capacity) rank error
#: beyond (see :mod:`repro.analysis.sketches`).
_SKETCH_CAPACITY = 4096


@dataclasses.dataclass(frozen=True)
class ServedQuery:
    """One arrival and its outcome."""

    arrival_s: float
    outcome: SubmissionOutcome
    waiting_apps_at_submit: int
    #: Time spent waiting for pool capacity before workers were assigned.
    #: The outcome's actual duration is pure execution time, so the
    #: user-visible latency is the sum of the two.
    queueing_delay_s: float = 0.0
    #: How many arrivals shared this query's sizing pass -- 1 when the
    #: query was decided alone, >= 2 when the arrival coalescer routed it
    #: through one ``determine_batch`` forest pass with its neighbours.
    decision_batch_size: int = 1
    #: Time the arrival waited for its coalescing window to close before
    #: sizing began (0 outside micro-batched serving).
    batching_delay_s: float = 0.0
    #: The tenant the arrival belongs to (and its lease billed to).
    tenant: str = DEFAULT_TENANT
    #: Time the arrival waited at the admission gate because its tenant
    #: was at ``max_in_flight`` (0 outside multi-tenant quotas).
    admission_delay_s: float = 0.0
    #: Portion of ``queueing_delay_s`` spent waiting on the tenant's
    #: leased-worker quota while shard capacity was otherwise available.
    quota_delay_s: float = 0.0
    #: How many times the query was resubmitted after a fault revoked an
    #: attempt's lease (0 outside fault injection).
    n_retries: int = 0
    #: Spend the query's *failed* attempts forfeited into the pool's
    #: wasted-cost ledger; the outcome's cost covers only the successful
    #: attempt.
    wasted_cost_dollars: float = 0.0
    #: Time lost to failed attempts: from each failure's submission to
    #: the next resubmission (runtime of the dead attempt plus backoff).
    retry_delay_s: float = 0.0

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (admission + batching + retries
        + queueing + execution)."""
        return (
            self.admission_delay_s
            + self.batching_delay_s
            + self.retry_delay_s
            + self.queueing_delay_s
            + self.outcome.actual_seconds
        )

    @property
    def completion_s(self) -> float:
        return self.arrival_s + self.latency_s

    @property
    def quota_throttle_delay_s(self) -> float:
        """Total delay attributable to tenant quotas (admission + lease)."""
        return self.admission_delay_s + self.quota_delay_s


@dataclasses.dataclass(frozen=True)
class DroppedQuery:
    """One arrival that terminated without completing.

    ``reason`` is ``"failed"`` (faults exhausted the retry budget) or
    ``"shed"`` (the admission backlog exceeded ``max_pending_admission``
    and the load-shedder rejected the work instead of queueing forever).
    """

    arrival_s: float
    query_id: str
    tenant: str
    reason: str
    n_retries: int = 0
    wasted_cost_dollars: float = 0.0


class ServingStream:
    """Mergeable online accumulators over a replay's served queries.

    The streaming counterpart of a :class:`ServingReport`'s per-query
    list: O(sketch capacity) memory regardless of trace length.  Every
    replay folds each completion into one of these (per tenant too, one
    level deep); with ``keep_queries=False`` the stream is all the
    report keeps.  Percentiles come from deterministic reservoir
    sketches -- exact while a replay fits in the reservoir -- and cost /
    decision-time totals from exactly-rounded online sums, so the
    chargeback-conservation, Jain-index and time-ledger properties hold
    against streaming reports unchanged.
    """

    __slots__ = (
        "slo_seconds", "tenant_slos", "n", "latency", "queueing",
        "admission", "quota_throttle", "decision", "query_cost",
        "decision_seconds_total", "n_slo_hits", "n_batched", "n_aliens",
        "n_retrains", "n_failed", "n_shed", "n_retries", "wasted_cost",
        "tenant_streams",
    )

    def __init__(
        self,
        slo_seconds: float,
        sketch_capacity: int = _SKETCH_CAPACITY,
        _track_tenants: bool = True,
        tenant_slos: Mapping[str, float] | None = None,
    ) -> None:
        self.slo_seconds = slo_seconds
        #: Per-tenant SLO overrides (``TenantSpec.slo_latency_s``): a
        #: tenant's sub-stream counts SLO hits against its own latency
        #: target instead of the replay-wide one.  Empty = legacy
        #: behaviour, every tenant measured against ``slo_seconds``.
        self.tenant_slos: dict[str, float] = dict(tenant_slos or {})
        self.n = 0
        self.latency = ReservoirQuantiles(sketch_capacity, seed=1)
        self.queueing = ReservoirQuantiles(sketch_capacity, seed=2)
        self.admission = ReservoirQuantiles(sketch_capacity, seed=3)
        self.quota_throttle = ReservoirQuantiles(sketch_capacity, seed=4)
        self.decision = ReservoirQuantiles(sketch_capacity, seed=5)
        self.query_cost = ExactSum()
        self.decision_seconds_total = ExactSum()
        self.n_slo_hits = 0
        self.n_batched = 0
        self.n_aliens = 0
        self.n_retrains = 0
        #: Reliability accumulators (all zero outside fault injection):
        #: arrivals dropped after exhausting their retry budget, arrivals
        #: shed at the admission gate, total resubmissions, and the
        #: spend failed attempts forfeited.
        self.n_failed = 0
        self.n_shed = 0
        self.n_retries = 0
        self.wasted_cost = ExactSum()
        #: Per-tenant sub-streams (one level deep: sub-streams track no
        #: tenants of their own); ``None`` marks a tenant slice.
        self.tenant_streams: dict[str, ServingStream] | None = (
            {} if _track_tenants else None
        )

    def ensure_tenant(self, tenant: str) -> "ServingStream":
        """Register a tenant's sub-stream (idempotent, ordered)."""
        if self.tenant_streams is None:
            raise ValueError("tenant slices do not track sub-tenants")
        stream = self.tenant_streams.get(tenant)
        if stream is None:
            stream = ServingStream(
                self.tenant_slos.get(tenant, self.slo_seconds),
                sketch_capacity=self.latency.capacity,
                _track_tenants=False,
            )
            self.tenant_streams[tenant] = stream
        return stream

    def observe(self, query: ServedQuery) -> None:
        """Fold one completion into the accumulators (and its tenant's)."""
        self._observe_one(query)
        if self.tenant_streams is not None:
            self.ensure_tenant(query.tenant)._observe_one(query)

    def _observe_one(self, query: ServedQuery) -> None:
        latency = query.latency_s
        self.n += 1
        self.latency.observe(latency)
        self.queueing.observe(query.queueing_delay_s)
        self.admission.observe(query.admission_delay_s)
        self.quota_throttle.observe(query.quota_throttle_delay_s)
        self.decision.observe(query.outcome.decision.inference_seconds)
        self.query_cost.add(query.outcome.cost_dollars)
        self.decision_seconds_total.add(
            query.outcome.decision.inference_seconds
        )
        if latency <= self.slo_seconds:
            self.n_slo_hits += 1
        if query.decision_batch_size >= 2:
            self.n_batched += 1
        if query.outcome.is_alien:
            self.n_aliens += 1
        if query.outcome.retrain_event:
            self.n_retrains += 1
        self.n_retries += query.n_retries
        self.wasted_cost.add(query.wasted_cost_dollars)

    def observe_columns(
        self, tenants: list[str], rows: np.ndarray
    ) -> None:
        """Fold a batch of completions, bitwise the per-record fold.

        ``rows`` is one ``float64`` row per served query *in completion
        order*, columns being exactly the numbers ``observe`` reads off
        a :class:`ServedQuery`: latency, queueing delay, admission
        delay, quota-throttle delay, decision inference seconds, cost,
        then 0/1 batched / alien / retrain flags, retry count and
        wasted cost.  The sketches consume each column through
        :meth:`ReservoirQuantiles.observe_many
        <repro.analysis.sketches.ReservoirQuantiles.observe_many>` (rng
        draw sequence identical to scalar observes) and the sums are
        order-independent, so stream state after the fold matches a
        record-at-a-time replay exactly.  This is the
        ``keep_queries=False`` fast path: no ``ServedQuery`` objects.
        """
        self._observe_columns_one(rows)
        if self.tenant_streams is not None:
            groups: dict[str, list[int]] = {}
            for position, tenant in enumerate(tenants):
                rows_for = groups.get(tenant)
                if rows_for is None:
                    rows_for = groups[tenant] = []
                rows_for.append(position)
            for tenant, positions in groups.items():
                self.ensure_tenant(tenant)._observe_columns_one(
                    rows[positions]
                )

    def _observe_columns_one(self, rows: np.ndarray) -> None:
        n = len(rows)
        if n == 0:
            return
        self.n += n
        latency = rows[:, 0]
        self.latency.observe_many(latency)
        self.queueing.observe_many(rows[:, 1])
        self.admission.observe_many(rows[:, 2])
        self.quota_throttle.observe_many(rows[:, 3])
        self.decision.observe_many(rows[:, 4])
        self.query_cost.add_many(rows[:, 5])
        self.decision_seconds_total.add_many(rows[:, 4])
        self.n_slo_hits += int(np.count_nonzero(latency <= self.slo_seconds))
        self.n_batched += int(np.count_nonzero(rows[:, 6]))
        self.n_aliens += int(np.count_nonzero(rows[:, 7]))
        self.n_retrains += int(np.count_nonzero(rows[:, 8]))
        self.n_retries += int(rows[:, 9].sum())
        self.wasted_cost.add_many(rows[:, 10])

    def observe_drop(self, drop: DroppedQuery) -> None:
        """Fold one non-completion into the accumulators (and tenant's)."""
        self._observe_drop_one(drop)
        if self.tenant_streams is not None:
            self.ensure_tenant(drop.tenant)._observe_drop_one(drop)

    def _observe_drop_one(self, drop: DroppedQuery) -> None:
        if drop.reason == "shed":
            self.n_shed += 1
        else:
            self.n_failed += 1
        self.n_retries += drop.n_retries
        self.wasted_cost.add(drop.wasted_cost_dollars)

    def merge(self, other: "ServingStream") -> None:
        """Fold another replay segment's stream into this one."""
        if other.slo_seconds != self.slo_seconds:
            raise ValueError("cannot merge streams with different SLOs")
        self.n += other.n
        self.latency.merge(other.latency)
        self.queueing.merge(other.queueing)
        self.admission.merge(other.admission)
        self.quota_throttle.merge(other.quota_throttle)
        self.decision.merge(other.decision)
        self.query_cost.merge(other.query_cost)
        self.decision_seconds_total.merge(other.decision_seconds_total)
        self.n_slo_hits += other.n_slo_hits
        self.n_batched += other.n_batched
        self.n_aliens += other.n_aliens
        self.n_retrains += other.n_retrains
        self.n_failed += other.n_failed
        self.n_shed += other.n_shed
        self.n_retries += other.n_retries
        self.wasted_cost.merge(other.wasted_cost)
        if self.tenant_streams is not None and other.tenant_streams:
            for tenant, theirs in other.tenant_streams.items():
                mine = self.tenant_streams.get(tenant)
                if mine is None:
                    self.ensure_tenant(tenant).merge(theirs)
                else:
                    mine.merge(theirs)


@dataclasses.dataclass
class ServingReport:
    """Aggregate view of one trace replay."""

    served: list[ServedQuery]
    slo_seconds: float
    pool_stats: PoolStats | None = None
    keepalive_cost_dollars: float = 0.0
    #: Idle warm spend per shard; the values sum to
    #: :attr:`keepalive_cost_dollars`, so a drained shard's share is
    #: directly observable (empty for tenant slices, which cannot own
    #: shard-level spend).
    keepalive_cost_by_shard: dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: Fair-share weight per tenant at replay time (single-tenant replays
    #: record the default tenant at weight 1).
    tenant_weights: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Peak concurrently leased ``(vms, sls)`` the pool saw per tenant --
    #: the observable the leased-worker quotas bound.
    tenant_peaks: dict[str, tuple[int, int]] = dataclasses.field(
        default_factory=dict
    )
    #: Arrivals that never completed: dropped after exhausting their
    #: retry budget ("failed") or shed at the admission gate ("shed").
    #: Empty outside fault injection, and empty in streaming mode (the
    #: stream's counters carry the tally instead).
    dropped: list[DroppedQuery] = dataclasses.field(default_factory=list)
    #: Spend forfeited to revoked leases (the pool's ``wasted_cost``
    #: ledger): partial work billed but thrown away when an instance
    #: died mid-query.  Zero outside fault injection.
    wasted_cost_dollars: float = 0.0
    #: The wasted spend per shard; values sum to
    #: :attr:`wasted_cost_dollars` (empty for tenant slices).
    wasted_cost_by_shard: dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: Epoch boundaries at which the fleet planner ran (closed an epoch,
    #: forecast the next and applied a plan).  Zero without a planner.
    epochs_planned: int = 0
    #: Idle spend of plan-driven pre-warming -- a sub-ledger of
    #: :attr:`keepalive_cost_dollars` (the chargeback identity is
    #: unchanged), making the planner's speculative spend observable.
    prewarm_cost_dollars: float = 0.0
    #: Peak concurrently in-flight arrivals per tenant, *including*
    #: retry resubmissions -- the observable proving ``max_in_flight``
    #: admission quotas hold even while retries re-enter the gate.
    tenant_in_flight_peaks: dict[str, int] = dataclasses.field(
        default_factory=dict
    )
    #: Per-tenant SLO targets (``TenantSpec.slo_latency_s``) captured at
    #: replay time; tenants absent here are measured against the
    #: replay-wide :attr:`slo_seconds`.  Empty when no tenant declares
    #: an SLO (the legacy behaviour, bit for bit).
    tenant_slos: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Streaming accumulators over the same completions.  Replays always
    #: fill one; with ``keep_queries=False`` (million-arrival mode) the
    #: per-query ``served`` list stays empty and every aggregate below
    #: routes through the stream instead.  Reports built by hand from a
    #: ``served`` list (no stream) behave exactly as before.
    stream: ServingStream | None = None

    @property
    def is_streaming(self) -> bool:
        """True when aggregates come from the stream, not ``served``.

        An empty report (no completions at all) stays on the legacy
        paths either way -- they already define the empty behaviour.
        """
        return (
            self.stream is not None
            and (self.stream.n + self.stream.n_failed + self.stream.n_shed) > 0
            and not self.served
            and not self.dropped
        )

    def _require_queries(self, what: str) -> None:
        if self.is_streaming:
            raise ValueError(
                f"per-query {what} are not retained in streaming mode "
                "(keep_queries=False); use the percentile/aggregate "
                "accessors instead"
            )

    @property
    def n_queries(self) -> int:
        if self.is_streaming:
            return self.stream.n
        return len(self.served)

    @property
    def latencies(self) -> np.ndarray:
        self._require_queries("latencies")
        return np.array([s.latency_s for s in self.served])

    @property
    def queueing_delays(self) -> np.ndarray:
        self._require_queries("queueing delays")
        return np.array([s.queueing_delay_s for s in self.served])

    @property
    def admission_delays(self) -> np.ndarray:
        self._require_queries("admission delays")
        return np.array([s.admission_delay_s for s in self.served])

    @property
    def quota_throttle_delays(self) -> np.ndarray:
        """Per-query delay attributable to tenant quotas.

        The sum of the admission-gate wait (``max_in_flight``) and the
        in-pool quota wait (``max_leased_vms`` / ``max_leased_sls``);
        zero everywhere when no quotas are configured.
        """
        self._require_queries("quota throttle delays")
        return np.array([s.quota_throttle_delay_s for s in self.served])

    @property
    def query_cost_dollars(self) -> float:
        """Sum of the per-query bills (excluding keep-alive spend)."""
        if self.is_streaming:
            return self.stream.query_cost.value
        return float(sum(s.outcome.cost_dollars for s in self.served))

    @property
    def total_cost_dollars(self) -> float:
        """The full bill: per-query charges, keep-alive, and wasted spend."""
        return (
            self.query_cost_dollars
            + self.keepalive_cost_dollars
            + self.wasted_cost_dollars
        )

    # ------------------------------------------------------------------
    # Reliability
    # ------------------------------------------------------------------

    @property
    def n_failed(self) -> int:
        """Arrivals dropped after exhausting their retry budget."""
        if self.is_streaming:
            return self.stream.n_failed
        return sum(1 for d in self.dropped if d.reason != "shed")

    @property
    def n_shed(self) -> int:
        """Arrivals rejected at the admission gate under overload."""
        if self.is_streaming:
            return self.stream.n_shed
        return sum(1 for d in self.dropped if d.reason == "shed")

    @property
    def n_arrivals(self) -> int:
        """Every trace arrival, however it terminated."""
        return self.n_queries + self.n_failed + self.n_shed

    @property
    def n_retries_total(self) -> int:
        """Resubmissions across all arrivals (served and dropped)."""
        if self.is_streaming:
            return self.stream.n_retries
        return (
            sum(s.n_retries for s in self.served)
            + sum(d.n_retries for d in self.dropped)
        )

    @property
    def availability(self) -> float:
        """Fraction of arrivals that completed (1.0 for an empty report)."""
        arrivals = self.n_arrivals
        if arrivals == 0:
            return 1.0
        return self.n_queries / arrivals

    @property
    def retry_rate(self) -> float:
        """Resubmissions per arrival (can exceed 1 under heavy faults)."""
        arrivals = self.n_arrivals
        if arrivals == 0:
            return 0.0
        return self.n_retries_total / arrivals

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals rejected at the admission gate."""
        arrivals = self.n_arrivals
        if arrivals == 0:
            return 0.0
        return self.n_shed / arrivals

    @property
    def wasted_cost_share(self) -> float:
        """Wasted spend as a fraction of the total bill."""
        total = self.total_cost_dollars
        if total == 0.0:
            return 0.0
        return self.wasted_cost_dollars / total

    @property
    def warm_start_rate(self) -> float:
        """Fraction of worker acquisitions served warm from the pool."""
        if self.pool_stats is None:
            return 0.0
        return self.pool_stats.warm_start_rate

    @property
    def decision_seconds(self) -> np.ndarray:
        """Per-query Workload Predictor decision latency (inference time).

        The predictor sits inline on every arrival, so this is the
        serving-side overhead the inference engines exist to shrink;
        track it per replay to catch hot-path regressions.

        Attribution semantics: an arrival decided alone carries its own
        measured decision time; an arrival sized in a coalesced group
        (``decision_batch_size >= 2``) carries the group's shared
        ``determine_batch`` time *amortised equally* across the group,
        so :attr:`total_decision_seconds` always equals the wall time
        the replay actually spent deciding.
        """
        self._require_queries("decision times")
        return np.array(
            [s.outcome.decision.inference_seconds for s in self.served]
        )

    @property
    def batched_decision_rate(self) -> float:
        """Fraction of queries sized through a shared forest pass."""
        if self.is_streaming:
            return self.stream.n_batched / self.stream.n
        if not self.served:
            return 0.0
        return float(
            np.mean([s.decision_batch_size >= 2 for s in self.served])
        )

    def decision_latency_percentile(self, percentile: float) -> float:
        if self.is_streaming:
            return self.stream.decision.percentile(percentile)
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.decision_seconds, percentile))

    @property
    def total_decision_seconds(self) -> float:
        """Cumulative time spent inside resource determination."""
        if self.is_streaming:
            return self.stream.decision_seconds_total.value
        return float(self.decision_seconds.sum())

    @property
    def n_aliens(self) -> int:
        if self.is_streaming:
            return self.stream.n_aliens
        return sum(1 for s in self.served if s.outcome.is_alien)

    @property
    def n_retrains(self) -> int:
        if self.is_streaming:
            return self.stream.n_retrains
        return sum(1 for s in self.served if s.outcome.retrain_event)

    def latency_percentile(self, percentile: float) -> float:
        if self.is_streaming:
            return self.stream.latency.percentile(percentile)
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.latencies, percentile))

    def queueing_delay_percentile(self, percentile: float) -> float:
        if self.is_streaming:
            return self.stream.queueing.percentile(percentile)
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.queueing_delays, percentile))

    def admission_delay_percentile(self, percentile: float) -> float:
        if self.is_streaming:
            return self.stream.admission.percentile(percentile)
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.admission_delays, percentile))

    def quota_throttle_delay_percentile(self, percentile: float) -> float:
        if self.is_streaming:
            return self.stream.quota_throttle.percentile(percentile)
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.quota_throttle_delays, percentile))

    @property
    def slo_attainment(self) -> float:
        """Fraction of queries finishing within the SLO."""
        if self.is_streaming:
            return self.stream.n_slo_hits / self.stream.n
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.mean(self.latencies <= self.slo_seconds))

    # ------------------------------------------------------------------
    # Tenancy: slices, fairness, chargeback
    # ------------------------------------------------------------------

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenants of this replay, in replay order.

        Tenants registered at replay time come first (even if they served
        nothing); tenants only observed on queries follow.
        """
        ordered = dict.fromkeys(self.tenant_weights)
        if self.is_streaming:
            for tenant in self.stream.tenant_streams or ():
                ordered.setdefault(tenant, None)
        else:
            for query in self.served:
                ordered.setdefault(query.tenant, None)
        return tuple(ordered)

    def for_tenant(self, tenant: str) -> "ServingReport":
        """This report restricted to one tenant's queries.

        The slice is measured against the tenant's own SLO when the
        tenant declared one (``TenantSpec.slo_latency_s``), the
        replay-wide SLO otherwise; it carries the tenant's keep-alive
        chargeback share as its keep-alive cost (so the slice's
        ``total_cost_dollars`` is the tenant's bill), and drops the pool
        stats, which are not attributable to a single tenant.  A
        streaming report slices to the tenant's sub-stream.
        """
        if tenant not in self.tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        slice_slo = self.tenant_slos.get(tenant, self.slo_seconds)
        weight = self.tenant_weights.get(tenant, 1.0)
        peaks = {}
        if tenant in self.tenant_peaks:
            peaks[tenant] = self.tenant_peaks[tenant]
        in_flight_peaks = {}
        if tenant in self.tenant_in_flight_peaks:
            in_flight_peaks[tenant] = self.tenant_in_flight_peaks[tenant]
        stream = None
        if self.is_streaming:
            stream = (self.stream.tenant_streams or {}).get(tenant)
            if stream is None:
                # Registered but never served: an empty slice.
                stream = ServingStream(slice_slo, _track_tenants=False)
        return ServingReport(
            served=[s for s in self.served if s.tenant == tenant],
            slo_seconds=slice_slo,
            pool_stats=None,
            keepalive_cost_dollars=self.keepalive_shares().get(tenant, 0.0),
            tenant_weights={tenant: weight},
            tenant_peaks=peaks,
            dropped=[d for d in self.dropped if d.tenant == tenant],
            wasted_cost_dollars=self._tenant_wasted_costs().get(tenant, 0.0),
            tenant_in_flight_peaks=in_flight_peaks,
            tenant_slos=(
                {tenant: self.tenant_slos[tenant]}
                if tenant in self.tenant_slos
                else {}
            ),
            stream=stream,
        )

    def tenant_slo_attainment(self) -> dict[str, float]:
        """SLO attainment per tenant, each against its *own* target.

        A tenant with ``slo_latency_s`` set is measured against that
        deadline; others against the replay-wide SLO.  Tenants that
        served nothing are omitted (attainment is undefined on an empty
        slice).  Works identically for per-query and streaming
        (``keep_queries=False``) reports, and survives :meth:`merge`.
        """
        attainment = {}
        for tenant in self.tenants:
            tenant_slice = self.for_tenant(tenant)
            if tenant_slice.n_queries:
                attainment[tenant] = tenant_slice.slo_attainment
        return attainment

    @property
    def jain_fairness_index(self) -> float:
        """Jain's index over weight-normalised per-tenant spend.

        ``(sum x)^2 / (n * sum x^2)`` with ``x_t = query_cost_t /
        weight_t``: 1 when every tenant consumed service exactly in
        proportion to its weight, ``1/n`` when one tenant consumed
        everything.  Trivially 1 for a single tenant (or no spend).
        """
        shares = []
        costs = self._tenant_query_costs()
        for tenant in self.tenants:
            weight = self.tenant_weights.get(tenant, 1.0)
            shares.append(costs.get(tenant, 0.0) / weight)
        if len(shares) <= 1:
            return 1.0
        total = math.fsum(shares)
        if total == 0.0:
            return 1.0
        return total * total / (
            len(shares) * math.fsum(x * x for x in shares)
        )

    def _tenant_query_costs(self) -> dict[str, float]:
        costs = {tenant: 0.0 for tenant in self.tenants}
        if self.is_streaming:
            substreams = self.stream.tenant_streams
            for tenant in costs:
                if substreams is not None and tenant in substreams:
                    costs[tenant] = substreams[tenant].query_cost.value
                elif substreams is None and len(costs) == 1:
                    # A tenant slice: the stream itself is the tenant's.
                    costs[tenant] = self.stream.query_cost.value
            return costs
        for query in self.served:
            costs[query.tenant] += query.outcome.cost_dollars
        return costs

    def _tenant_wasted_costs(self) -> dict[str, float]:
        """Per-tenant forfeited spend (failed attempts' partial bills).

        Unlike keep-alive, wasted spend *is* attributable: the revoked
        lease belonged to one tenant's query, so that tenant's bill
        carries it directly.
        """
        wasted = {tenant: 0.0 for tenant in self.tenants}
        if self.is_streaming:
            substreams = self.stream.tenant_streams
            for tenant in wasted:
                if substreams is not None and tenant in substreams:
                    wasted[tenant] = substreams[tenant].wasted_cost.value
                elif substreams is None and len(wasted) == 1:
                    # A tenant slice: the stream itself is the tenant's.
                    wasted[tenant] = self.stream.wasted_cost.value
            return wasted
        for query in self.served:
            wasted[query.tenant] += query.wasted_cost_dollars
        for drop in self.dropped:
            wasted[drop.tenant] += drop.wasted_cost_dollars
        return wasted

    def keepalive_shares(self) -> dict[str, float]:
        """Keep-alive spend apportioned pro rata to per-tenant query cost.

        Idle warm time is a shared amenity with no single owner; billing
        it in proportion to metered usage is the standard chargeback
        convention.  When nothing was metered (an idle day) the spend is
        split equally instead.
        """
        return self._keepalive_shares(self._tenant_query_costs())

    def _keepalive_shares(self, costs: dict[str, float]) -> dict[str, float]:
        if not costs:
            return {}
        keepalive = self.keepalive_cost_dollars
        total = math.fsum(costs.values())
        if total > 0.0:
            return {t: keepalive * (c / total) for t, c in costs.items()}
        return {t: keepalive / len(costs) for t in costs}

    def chargeback(self) -> dict[str, float]:
        """Per-tenant bills that partition the pool's total cost.

        Each tenant is billed its metered query cost, the spend its
        failed attempts forfeited, and its :meth:`keepalive_shares`
        portion; the floating-point residual of the pro-rata split is
        folded into the largest bill (ties broken by tenant name) so the
        bills sum to :attr:`total_cost_dollars` to the last bit.
        """
        costs = self._tenant_query_costs()
        return self._bills(costs, self._keepalive_shares(costs))

    def _bills(
        self, costs: dict[str, float], shares: dict[str, float]
    ) -> dict[str, float]:
        wasted = self._tenant_wasted_costs()
        bills = {
            t: costs[t] + wasted.get(t, 0.0) + shares.get(t, 0.0)
            for t in costs
        }
        if bills:
            residual = self.total_cost_dollars - math.fsum(bills.values())
            anchor = max(bills, key=lambda t: (bills[t], t))
            bills[anchor] += residual
        return bills

    def chargeback_table(self) -> str:
        """The chargeback as an ASCII table with a pool-total footer."""
        from repro.analysis.reporting import format_table

        costs = self._tenant_query_costs()
        shares = self._keepalive_shares(costs)
        bills = self._bills(costs, shares)
        if self.is_streaming:
            counts = {
                tenant: stream.n
                for tenant, stream in (self.stream.tenant_streams or {}).items()
            }
        else:
            counts = collections.Counter(s.tenant for s in self.served)
        rows = []
        for tenant in self.tenants:
            rows.append((
                tenant,
                counts.get(tenant, 0),
                100.0 * costs.get(tenant, 0.0),
                100.0 * shares.get(tenant, 0.0),
                100.0 * bills.get(tenant, 0.0),
            ))
        footer = (
            "pool total",
            self.n_queries,
            100.0 * self.query_cost_dollars,
            100.0 * self.keepalive_cost_dollars,
            100.0 * math.fsum(bills.values()),
        )
        return format_table(
            ("tenant", "queries", "query_cents", "keepalive_cents",
             "total_cents"),
            rows,
            footer=footer,
            title="chargeback",
        )

    def summary(self) -> str:
        cost = (
            f"cost {100 * self.query_cost_dollars:.1f}"
            f" + keep-alive {100 * self.keepalive_cost_dollars:.2f}"
        )
        if self.wasted_cost_dollars:
            cost += f" + wasted {100 * self.wasted_cost_dollars:.2f}"
        cost += f" = {100 * self.total_cost_dollars:.1f} cents"
        if not self.n_queries:
            return f"0 queries, {cost}"
        text = (
            f"{self.n_queries} queries: p50 {self.latency_percentile(50):.1f}s, "
            f"p95 {self.latency_percentile(95):.1f}s, "
            f"SLO({self.slo_seconds:.0f}s) {100 * self.slo_attainment:.0f}%, "
            f"{cost}, "
            f"{self.n_aliens} aliens, {self.n_retrains} retrains"
        )
        if self.pool_stats is not None and self.pool_stats.acquisitions:
            text += (
                f", {100 * self.warm_start_rate:.0f}% warm starts, "
                f"queue p95 {self.queueing_delay_percentile(95):.1f}s"
            )
        if self.pool_stats is not None and self.pool_stats.instance_seconds:
            # The time-conservation ledger: every instance-second is
            # either leased to a query or idle in a warm set.
            stats = self.pool_stats
            text += (
                f", {stats.instance_seconds:.0f} instance-s "
                f"({stats.leased_seconds:.0f} leased + "
                f"{stats.idle_seconds:.0f} idle, "
                f"{100 * stats.idle_fraction:.0f}% idle)"
            )
        if self.batched_decision_rate > 0:
            text += (
                f", {100 * self.batched_decision_rate:.0f}% batched decisions"
            )
        if len(self.tenants) > 1:
            text += (
                f", {len(self.tenants)} tenants, "
                f"Jain {self.jain_fairness_index:.2f}"
            )
        if self.n_failed or self.n_shed or self.n_retries_total:
            text += (
                f", availability {100 * self.availability:.1f}% "
                f"({self.n_retries_total} retries, "
                f"{self.n_failed} failed, {self.n_shed} shed)"
            )
        return text

    def merge(self, other: "ServingReport") -> "ServingReport":
        """Combine two replay segments' reports into one.

        Streams merge via their sketches, per-query lists concatenate
        when both sides kept them (otherwise the merged report is
        streaming-only), pool stats add counter-wise (peaks take the
        max), and keep-alive / weight / peak tables combine key-wise.
        Both sides must agree on the SLO and on the weight of any tenant
        they share.
        """
        if other.slo_seconds != self.slo_seconds:
            raise ValueError("cannot merge reports with different SLOs")
        for tenant, weight in other.tenant_weights.items():
            if self.tenant_weights.get(tenant, weight) != weight:
                raise ValueError(
                    f"tenant {tenant!r} has conflicting weights"
                )
        for tenant, slo in other.tenant_slos.items():
            if self.tenant_slos.get(tenant, slo) != slo:
                raise ValueError(
                    f"tenant {tenant!r} has conflicting SLOs"
                )
        if self.stream is None or other.stream is None:
            raise ValueError(
                "merge requires replay-produced reports (with streams)"
            )
        tenant_slos = {**self.tenant_slos, **other.tenant_slos}
        stream = ServingStream(
            self.slo_seconds,
            sketch_capacity=self.stream.latency.capacity,
            tenant_slos=tenant_slos,
        )
        stream.merge(self.stream)
        stream.merge(other.stream)
        served: list[ServedQuery] = []
        dropped: list[DroppedQuery] = []
        if self.served and other.served:
            served = [*self.served, *other.served]
            dropped = [*self.dropped, *other.dropped]
        keepalive_by_shard = dict(self.keepalive_cost_by_shard)
        for shard, cost in other.keepalive_cost_by_shard.items():
            keepalive_by_shard[shard] = keepalive_by_shard.get(shard, 0.0) + cost
        wasted_by_shard = dict(self.wasted_cost_by_shard)
        for shard, cost in other.wasted_cost_by_shard.items():
            wasted_by_shard[shard] = wasted_by_shard.get(shard, 0.0) + cost
        peaks = dict(self.tenant_peaks)
        for tenant, (vms, sls) in other.tenant_peaks.items():
            mine = peaks.get(tenant, (0, 0))
            peaks[tenant] = (max(mine[0], vms), max(mine[1], sls))
        in_flight_peaks = dict(self.tenant_in_flight_peaks)
        for tenant, peak in other.tenant_in_flight_peaks.items():
            in_flight_peaks[tenant] = max(
                in_flight_peaks.get(tenant, 0), peak
            )
        return ServingReport(
            served=served,
            slo_seconds=self.slo_seconds,
            pool_stats=_merge_pool_stats(self.pool_stats, other.pool_stats),
            keepalive_cost_dollars=(
                self.keepalive_cost_dollars + other.keepalive_cost_dollars
            ),
            keepalive_cost_by_shard=keepalive_by_shard,
            tenant_weights={**self.tenant_weights, **other.tenant_weights},
            tenant_peaks=peaks,
            dropped=dropped,
            wasted_cost_dollars=(
                self.wasted_cost_dollars + other.wasted_cost_dollars
            ),
            wasted_cost_by_shard=wasted_by_shard,
            epochs_planned=self.epochs_planned + other.epochs_planned,
            prewarm_cost_dollars=(
                self.prewarm_cost_dollars + other.prewarm_cost_dollars
            ),
            tenant_in_flight_peaks=in_flight_peaks,
            tenant_slos=tenant_slos,
            stream=stream,
        )


#: PoolStats fields that combine by max (every other field is additive).
_POOL_STAT_PEAKS = frozenset({"peak_leased_vms", "peak_leased_sls"})


def _merge_pool_stats(
    left: PoolStats | None, right: PoolStats | None
) -> PoolStats | None:
    if left is None or right is None:
        return left if right is None else right
    merged = {}
    for field in dataclasses.fields(PoolStats):
        a, b = getattr(left, field.name), getattr(right, field.name)
        merged[field.name] = max(a, b) if field.name in _POOL_STAT_PEAKS else a + b
    return PoolStats(**merged)


class _Arrival(NamedTuple):
    """One event of the merged multi-trace stream."""

    index: int
    tenant: str
    event: TraceEvent


class _ArrivalState:
    """Mutable retry bookkeeping for one arrival.

    Created lazily on the first failure (or when an arrival joins an
    open sizing group from the admission queue); arrivals that never
    need one keep the legacy stateless accounting bit for bit.  The
    ``basis`` timestamp is where attribution last stopped, so delay
    spans chain contiguously and ``admission + batching + retry_delay``
    always equals submit-time minus arrival-time at the final launch.
    """

    __slots__ = (
        "attempts", "retries", "wasted", "admission", "batching",
        "retry_delay", "basis",
    )

    def __init__(self) -> None:
        self.attempts = 0       # failed attempts so far
        self.retries = 0        # resubmissions actually made
        self.wasted = 0.0       # spend forfeited by revoked leases
        self.admission = 0.0    # accumulated admission-gate wait
        self.batching = 0.0     # accumulated coalescing-window wait
        self.retry_delay = 0.0  # accumulated backoff wait
        self.basis = 0.0        # where attribution last stopped


class _CompletionTable:
    """Flat completion/failure dispatch for every in-flight arrival.

    Replaces the per-launch ``complete``/``failed`` closure pair the
    replay loop used to allocate: launching registers one tuple of
    decision context keyed by arrival index, and two shared handlers
    look it up when the engine fires.  The table also owns the
    in-flight counters the closures used to mutate through ``nonlocal``.

    With ``keep_queries=False`` (``served is None``) completions do not
    build :class:`ServedQuery` objects at all: each buffers one column
    row and the buffer flushes through
    :meth:`ServingStream.observe_columns` -- bitwise the scalar fold --
    every :data:`_FLUSH_EVERY` completions and once at replay end.
    Drops keep feeding the stream immediately; they only touch counters
    and an order-independent exact sum, so interleaving is immaterial.
    """

    _FLUSH_EVERY = 4096

    __slots__ = (
        "stream", "served", "states", "finalize", "admit_next",
        "on_failure", "on_duration", "entries", "in_flight_total",
        "tenant_in_flight", "in_flight_peaks", "n_terminated", "_rows",
        "_row_tenants",
    )

    def __init__(
        self,
        stream: ServingStream,
        served: "list[ServedQuery | None] | None",
        states: "dict[int, _ArrivalState]",
        finalize,
    ) -> None:
        self.stream = stream
        self.served = served
        self.states = states
        self.finalize = finalize
        #: Wired by the replay after its admission closures exist.
        self.admit_next = None
        self.on_failure = None
        #: Optional duration sink (duration-aware autoscalers).
        self.on_duration = None
        #: arrival index -> (arrival, query, context, decision, waiting,
        #: batch_size, batching_delay, admission_delay)
        self.entries: dict[int, tuple] = {}
        self.in_flight_total = 0
        self.tenant_in_flight: collections.Counter[str] = (
            collections.Counter()
        )
        self.in_flight_peaks: dict[str, int] = {}
        self.n_terminated = 0
        self._rows: list[tuple] = []
        self._row_tenants: list[str] = []

    def register(self, index: int, entry: tuple) -> None:
        self.entries[index] = entry
        self.in_flight_total += 1
        tenant = entry[0].tenant
        count = self.tenant_in_flight[tenant] + 1
        self.tenant_in_flight[tenant] = count
        if count > self.in_flight_peaks.get(tenant, 0):
            self.in_flight_peaks[tenant] = count

    # Engine-facing adapters: the event engine hands back a
    # QueryExecution, the vectorized core a PlanRunner; both expose
    # ``result`` and ``lease``.

    def complete_execution(self, index: int, execution) -> None:
        self.complete(index, execution.result, execution.lease)

    def fail_execution(self, index: int, execution, reason: str) -> None:
        self.fail(index, execution.lease)

    def complete_runner(self, index: int, runner) -> None:
        self.complete(index, runner.result, runner.lease)

    def fail_runner(self, index: int, runner, reason: str) -> None:
        self.fail(index, runner.lease)

    def complete(self, index: int, result, lease) -> None:
        (arrival, query, context, decision, waiting, batch_size,
         batching_delay, admission_delay) = self.entries.pop(index)
        self.in_flight_total -= 1
        self.tenant_in_flight[arrival.tenant] -= 1
        st = self.states.pop(index, None)
        assert result is not None
        outcome = self.finalize(
            query,
            context,
            decision,
            result,
            # A clamped lease executed a different configuration than
            # predicted -- and a preempted query's wall time includes a
            # checkpoint/requeue detour; either way the error says
            # nothing about the model (the run itself still feeds the
            # history).
            observe_error=(
                not lease.was_clamped
                and getattr(result, "n_preemptions", 0) == 0
            ),
        )
        if self.on_duration is not None:
            self.on_duration(outcome.actual_seconds)
        n_retries = st.retries if st is not None else 0
        # Wasted spend has two sources: failed attempts booked on the
        # arrival state, and cooperative preemptions carried on the
        # result itself (the preempted attempt's forfeited lease bill).
        wasted = (st.wasted if st is not None else 0.0) + getattr(
            result, "wasted_cost_dollars", 0.0
        )
        retry_delay = st.retry_delay if st is not None else 0.0
        if self.served is None:
            # Same term order as ServedQuery.latency_s, so the buffered
            # value is bit-identical to the record path's.
            latency = (
                admission_delay
                + batching_delay
                + retry_delay
                + result.queueing_delay_s
                + outcome.actual_seconds
            )
            self._rows.append((
                latency,
                result.queueing_delay_s,
                admission_delay,
                admission_delay + result.quota_delay_s,
                outcome.decision.inference_seconds,
                outcome.cost_dollars,
                1.0 if batch_size >= 2 else 0.0,
                1.0 if outcome.is_alien else 0.0,
                1.0 if outcome.retrain_event else 0.0,
                float(n_retries),
                wasted,
            ))
            self._row_tenants.append(arrival.tenant)
            if len(self._rows) >= self._FLUSH_EVERY:
                self.flush()
        else:
            record = ServedQuery(
                arrival_s=arrival.event.arrival_s,
                outcome=outcome,
                waiting_apps_at_submit=waiting,
                queueing_delay_s=result.queueing_delay_s,
                decision_batch_size=batch_size,
                batching_delay_s=batching_delay,
                tenant=arrival.tenant,
                admission_delay_s=admission_delay,
                quota_delay_s=result.quota_delay_s,
                n_retries=n_retries,
                wasted_cost_dollars=wasted,
                retry_delay_s=retry_delay,
            )
            self.stream.observe(record)
            self.served[arrival.index] = record
        self.n_terminated += 1
        self.admit_next(arrival.tenant)

    def fail(self, index: int, lease) -> None:
        # A lease revocation killed this attempt mid-flight.  The
        # partial spend it forfeited is already in the pool's wasted
        # ledger; mirror it per arrival so the chargeback attributes it
        # to the owning tenant.  The failed attempt never reaches
        # ``finalize``: aborted runs must not feed the model's history.
        (arrival, _query, _context, _decision, _waiting, _batch_size,
         batching_delay, admission_delay) = self.entries.pop(index)
        self.in_flight_total -= 1
        self.tenant_in_flight[arrival.tenant] -= 1
        st = self.states.get(index)
        if st is None:
            st = self.states[index] = _ArrivalState()
            st.admission = admission_delay
            st.batching = batching_delay
        st.attempts += 1
        st.wasted += lease.revoked_cost.total
        self.on_failure(arrival, st)
        self.admit_next(arrival.tenant)

    def flush(self) -> None:
        """Drain the buffered completion rows into the stream."""
        if not self._rows:
            return
        self.stream.observe_columns(
            self._row_tenants,
            np.array(self._rows, dtype=np.float64),
        )
        self._rows = []
        self._row_tenants = []


def _group_bounds(
    times: np.ndarray, window: float | None
) -> Iterable[tuple[int, int]]:
    """Yield ``[start, end)`` index runs of one sizing group each.

    Mirrors :meth:`ServingSimulator._coalesce` exactly: a group collects
    consecutive arrivals within ``window`` of its *first* member (so
    windows never chain), ``window=0`` groups exact ties only, and
    ``window=None`` keeps every arrival solo.
    """
    n = len(times)
    if n == 0:
        return
    if window is None:
        for position in range(n):
            yield position, position + 1
        return
    ticks = times.tolist()
    start = 0
    for position in range(1, n):
        if ticks[position] - ticks[start] > window:
            yield start, position
            start = position
    yield start, n


class ServingSimulator:
    """Replays workload traces through a bootstrapped Smartpick.

    Parameters
    ----------
    system:
        A bootstrapped :class:`~repro.core.smartpick.Smartpick`.
    slo_seconds:
        The latency SLO reported against.
    pool_config:
        Sizing/keep-alive of the shared cluster; the default is a wide
        cold pool (fresh instances per query, no contention) matching the
        paper's serving model.
    autoscaler:
        Optional keep-alive policy overriding the config's fixed windows.
        Forecast-driven policies (anything exposing ``observe_arrival``,
        e.g. :class:`~repro.core.forecast.PredictiveKeepAlive`) are fed
        every arrival's query class -- via
        :meth:`~repro.core.predictor.WorkloadPredictor.query_class` --
        and the shard it was routed to, closing the serving ->
        forecaster -> pool feedback loop.  Policies that also expose
        ``observe_duration`` receive every completion's actual runtime
        (duration-aware park bounds).
    shard_autoscalers:
        Optional per-shard keep-alive overrides forwarded to the pool
        (``{shard_name: policy}``); forecast-driven entries receive the
        same arrival observations as ``autoscaler``.
    batch_window_s:
        Arrival coalescing window for micro-batched sizing.  Arrivals
        landing within ``batch_window_s`` of a group's first member are
        sized together through one vectorized ``determine_batch`` forest
        pass when the group closes (its last member's arrival time); the
        wait for the window is accounted per query as
        ``batching_delay_s``.  The default ``0.0`` only coalesces
        *exact-tick* arrivals, which wait for nothing; ``None`` disables
        coalescing entirely (every arrival decided alone through the BO
        path, the pre-coalescer behaviour, bit for bit).  Pass ``"auto"``
        (or an :class:`~repro.core.forecast.AdaptiveBatchWindow`
        instance) to let the window auto-tune per group from the
        observed arrival rate and the measured per-pass decision
        latency: each group then opens at its first arrival and closes
        after the tuner's current window (0 decides solo immediately).
        Note the tuner deliberately mixes clocks -- arrival gaps are
        simulated seconds, decision latency is *measured wall time*
        (in a live deployment both are wall-clock) -- so ``"auto"``
        replays may group differently across hosts; the numeric and
        ``None`` paths stay fully deterministic.
    tenants:
        Quota/weight registry for multi-tenant replays; defaults to the
        system's registry (if any), else a permissive one.
    shards / router / grant_policy:
        Forwarded to every replay's :class:`~repro.cloud.pool.ClusterPool`
        (named capacity partitions, placement policy, queue ordering).
    engine:
        ``"event"`` (default) schedules one heap event per sizing group,
        exactly as before.  ``"columnar"`` drains the merged arrival
        columns directly against the event heap
        (:meth:`Simulator.run_before <repro.engine.simulator.Simulator>`
        between groups), skipping the per-arrival event objects and
        closures; the interleaving with pool events is event-exact, so
        with ``decision_reuse=False`` the two engines produce identical
        reports.  The columnar engine accepts :class:`ColumnarTrace`
        inputs natively (a million arrivals are ~20 MB of columns);
        with ``batch_window_s="auto"`` it drains arrivals one at a time
        so the adaptive tuner sees the same event order as the event
        engine.
    submission:
        How decided arrivals are turned into running queries.
        ``"object"`` (default) builds one :class:`TaskScheduler
        <repro.engine.scheduler.TaskScheduler>` per query, drawing task
        duration noise scalar-by-scalar -- bit-for-bit the historical
        path.  ``"presample"`` keeps the scheduler objects but draws
        each query's noise as one vectorized block at submit (bitwise
        the same numbers as ``"object"``; a stepping stone kept mostly
        for pinning).  ``"vector"`` is the fast path: repeat arrivals
        share a compiled :class:`~repro.engine.plan.StagePlan`, a
        :class:`~repro.engine.plan.PlanRunner` simulates each query's
        wave timeline locally at lease grant instead of heap-stepping
        per task, and each sizing group leases through one
        :meth:`ClusterPool.acquire_many
        <repro.cloud.pool.ClusterPool.acquire_many>` pass.  Reports are
        field-for-field ``"presample"``'s (same rng stream, event-exact
        pool interleaving); policies a plan cannot express (static
        timeouts, drained-instance holds) fall back per arrival to the
        presampling path.  Noise caveat: ``"object"`` draws at each
        task dispatch, so *concurrent* queries interleave draws on the
        shared rng; ``"presample"``/``"vector"`` draw each query's
        block at submit.  Reports across that divide match exactly only
        when queries never overlap -- pin ``"vector"`` against
        ``"presample"``.
    keep_queries:
        ``True`` (default) retains the full per-query ``served`` list --
        field-for-field today's report.  ``False`` folds every
        completion into the report's :class:`ServingStream` only, so
        replay memory stays O(sketch capacity) instead of O(arrivals):
        the million-arrival mode.  Both modes fill the stream.
    decision_reuse:
        Reuse sizing decisions across arrivals of the same query class
        (identity + input-size octave + waiting-apps octave) under an
        unchanged model version.  This is the serving-style approximation
        that makes million-arrival replay tractable -- repeated classes
        skip feature building and the forest pass entirely; reused
        decisions carry ``inference_seconds=0`` (a cache lookup), and
        fresh sizings always go through the batched grid path (never the
        per-query BO loop).  Decision *features* (submit epoch, history
        mean, exact waiting count) may therefore be slightly stale for
        reused arrivals.  Default ``None``: enabled for the columnar
        engine, disabled for the event engine (which stays bit-exact).
    retry_policy:
        Failure handling for revoked leases (fault injection).  A
        revoked arrival is resubmitted through the admission gate after
        an exponential-backoff delay (jittered deterministically from
        the fault plan's seed) until the policy's retry budget is
        exhausted, at which point it is dropped and reported as failed.
        ``None`` (default) drops on first failure -- the naive-fail
        baseline.
    fault_plan:
        Optional :class:`~repro.cloud.faults.FaultPlan` armed on every
        replay's pool.  ``None`` -- or a plan whose
        :attr:`~repro.cloud.faults.FaultPlan.is_zero` holds -- leaves
        the replay bit-for-bit identical to today's fault-free run: no
        injector is attached and no fault decision is ever drawn.
    max_pending_admission:
        Load-shedding bound on each tenant's admission-gate queue: an
        arrival (or retry) finding the queue at this depth is shed --
        dropped and reported loudly -- instead of waiting forever.
        ``None`` (default) queues unboundedly, exactly as before.
    quota_priced_sizing:
        Feed each tenant's leased-worker quotas
        (``TenantSpec.max_leased_vms`` / ``max_leased_sls``) into the
        Workload Predictor's candidate search bounds, so an over-quota
        configuration is never *chosen* in the first place -- the quota
        is priced into the Eq. 4 cost/latency tradeoff at sizing time
        instead of discovered as ``quota_delay_s`` at grant time.  A
        coalesced group whose members carry *different* bounds falls
        back to per-arrival sizing (each arrival still sees its exact
        waiting count).  Default ``False``: sizing ignores quotas,
        bit for bit the legacy behaviour.

    Tenants with an SLO (``TenantSpec.slo_latency_s``) additionally get
    a deadline threaded onto every lease (``arrival + slo_latency_s``),
    which deadline-aware grant policies
    (:class:`~repro.cloud.pool.DeadlineAwareGrant`) order the queue by;
    when such a policy has preemption enabled, batch-tier arrivals are
    launched preemptible so an interactive tenant's urgent arrival can
    checkpoint-and-requeue a long-running batch query.  Per-tenant SLO
    attainment lands in :meth:`ServingReport.tenant_slo_attainment`.
    """

    def __init__(
        self,
        system: Smartpick,
        slo_seconds: float = 120.0,
        pool_config: PoolConfig | None = None,
        autoscaler: AutoscalerPolicy | None = None,
        batch_window_s: float | None | str | AdaptiveBatchWindow = 0.0,
        tenants: TenantRegistry | None = None,
        shards: dict[str, PoolConfig] | None = None,
        router: ShardRouter | None = None,
        grant_policy: GrantPolicy | None = None,
        shard_autoscalers: dict[str, AutoscalerPolicy] | None = None,
        engine: str = "event",
        submission: str = "object",
        keep_queries: bool = True,
        decision_reuse: bool | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        max_pending_admission: int | None = None,
        quota_priced_sizing: bool = False,
        planner: FleetPlanner | None = None,
    ) -> None:
        if slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if max_pending_admission is not None and max_pending_admission < 0:
            raise ValueError("max_pending_admission must be non-negative")
        if engine not in ("event", "columnar"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'event' or 'columnar'"
            )
        if submission not in ("object", "presample", "vector"):
            raise ValueError(
                f"unknown submission {submission!r}; choose 'object', "
                "'presample' or 'vector'"
            )
        if isinstance(batch_window_s, str):
            if batch_window_s != "auto":
                raise ValueError(
                    "batch_window_s accepts a number, None, 'auto' or an "
                    f"AdaptiveBatchWindow, not {batch_window_s!r}"
                )
        elif (
            not isinstance(batch_window_s, AdaptiveBatchWindow)
            and batch_window_s is not None
            and batch_window_s < 0
        ):
            raise ValueError("batch_window_s must be non-negative (or None)")
        if not system.predictor.is_trained:
            raise ValueError("bootstrap the system before serving a trace")
        self.system = system
        self.slo_seconds = slo_seconds
        self._default_pool = pool_config is None and shards is None
        self.pool_config = pool_config or PoolConfig()
        self.autoscaler = autoscaler
        self.batch_window_s = batch_window_s
        self.tenants = tenants if tenants is not None else system.tenants
        self.shards = shards
        self.router = router
        self.grant_policy = grant_policy
        self.shard_autoscalers = shard_autoscalers
        self.engine = engine
        self.submission = submission
        self.keep_queries = keep_queries
        self.decision_reuse = (
            engine == "columnar" if decision_reuse is None else decision_reuse
        )
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.max_pending_admission = max_pending_admission
        self.quota_priced_sizing = quota_priced_sizing
        #: Epoch-level fleet planner (None = reactive serving, bit for
        #: bit).  Each replay runs on a ``planner.fresh()`` copy, so a
        #: scenario-embedded planner cannot leak state across replays.
        self.planner = planner

    def _batch_tuner(self) -> AdaptiveBatchWindow | None:
        """The adaptive-window tuner for one replay (None = static path).

        ``"auto"`` builds a fresh default tuner per replay so successive
        replays do not leak each other's observed state; a caller-made
        instance is used as-is (the caller owns warm-starting it).
        """
        if self.batch_window_s == "auto":
            return AdaptiveBatchWindow()
        if isinstance(self.batch_window_s, AdaptiveBatchWindow):
            return self.batch_window_s
        return None

    def _coalesce(
        self, arrivals: Iterable[_Arrival]
    ) -> list[list[_Arrival]]:
        """Group stream arrivals into sizing batches.

        A group collects consecutive arrivals within ``batch_window_s``
        of its *first* member (so windows never chain unboundedly); with
        the default window of 0 only exact-tick arrivals share a group,
        and with ``batch_window_s=None`` every arrival stands alone.
        Groups may span tenants: coalescing shares a forest pass, not a
        bill.
        """
        groups: list[list[_Arrival]] = []
        for arrival in arrivals:
            if (
                self.batch_window_s is not None
                and groups
                and arrival.event.arrival_s - groups[-1][0].event.arrival_s
                <= self.batch_window_s
            ):
                groups[-1].append(arrival)
            else:
                groups.append([arrival])
        return groups

    def replay(
        self,
        trace: WorkloadTrace | ColumnarTrace,
        knob: float | None = None,
        mode: str = "hybrid",
    ) -> ServingReport:
        """Serve every arrival of ``trace`` in one shared simulation.

        Arrivals are interleaved events on a single simulator: a query
        submitted while earlier ones are still running contends with them
        for pool capacity instead of executing in a vacuum.  Arrivals
        coalesced into one sizing group (see ``batch_window_s``) share a
        single vectorized forest pass; a solo arrival goes through the
        per-query BO determination exactly as before.  Traces may be
        event-object (:class:`WorkloadTrace`) or columnar
        (:class:`ColumnarTrace`); either engine accepts both.
        """
        return self._replay([(DEFAULT_TENANT, trace)], knob=knob, mode=mode)

    def replay_multi(
        self,
        traces: Mapping[str, WorkloadTrace | ColumnarTrace]
        | Iterable[tuple[str, WorkloadTrace | ColumnarTrace]],
        knob: float | None = None,
        mode: str = "hybrid",
    ) -> ServingReport:
        """Serve several tenants' traces as one interleaved event stream.

        Every ``(tenant, trace)`` pair is merged into a single
        time-ordered arrival stream (ties broken by pair order) replayed
        over ONE shared simulator and pool, so tenants genuinely contend:
        the pool's grant policy arbitrates saturation, leased-worker
        quotas throttle greedy tenants, and ``max_in_flight`` quotas gate
        admission here.  The report carries per-tenant slices, fairness
        and chargeback; with a single pair it is field-for-field the
        :meth:`replay` report (modulo the tenant name).
        """
        pairs = (
            list(traces.items())
            if isinstance(traces, Mapping)
            else list(traces)
        )
        seen: set[str] = set()
        for tenant, _ in pairs:
            if not tenant:
                raise ValueError("tenant names must be non-empty")
            if tenant in seen:
                raise ValueError(f"duplicate tenant {tenant!r}")
            seen.add(tenant)
        return self._replay(pairs, knob=knob, mode=mode)

    def _replay(
        self,
        pairs: list[tuple[str, WorkloadTrace]],
        knob: float | None,
        mode: str,
    ) -> ServingReport:
        # `is not None`, not truthiness: an *empty* strict registry is
        # falsy (len 0) but must still reject unknown tenants.
        registry = (
            self.tenants if self.tenants is not None else TenantRegistry()
        )
        simulator = Simulator()
        # A zero plan attaches NO injector at all: the fault-free replay
        # is bit-for-bit today's, with no draws and no extra events.
        injector = None
        if self.fault_plan is not None and not self.fault_plan.is_zero:
            injector = FaultInjector(self.fault_plan)
        pool = ClusterPool(
            simulator,
            provider=self.system.provider,
            prices=self.system.prices,
            config=self.pool_config,
            autoscaler=self.autoscaler,
            shards=self.shards,
            router=self.router,
            tenants=registry,
            grant_policy=self.grant_policy,
            shard_autoscalers=self.shard_autoscalers,
            fault_injector=injector,
        )
        # Epoch planning runs on a fresh copy of the configured planner,
        # so replays stay deterministic however often the simulator is
        # reused.  A forecast-aware router must read the SAME planner
        # instance the replay feeds, so it is rebound to the fresh copy.
        planner = self.planner.fresh() if self.planner is not None else None
        if planner is not None and isinstance(
            pool.router, ForecastAwareRouter
        ):
            pool.router = ForecastAwareRouter(planner)
        # Forecast-driven autoscalers duck-type on `observe_arrival`;
        # they receive every arrival's query class and routed shard.
        # Dedup keys on the observation SINK (the forecaster when the
        # policy exposes one), so per-shard policies sharing one
        # forecaster do not double-feed it -- duplicate same-timestamp
        # observations would floor the gap EWMA to min_gap_s.
        forecast_observers = []
        seen_sinks: set[int] = set()
        for policy in (
            self.autoscaler,
            *(self.shard_autoscalers or {}).values(),
        ):
            if policy is None or not hasattr(policy, "observe_arrival"):
                continue
            sink = getattr(policy, "forecaster", policy)
            if id(sink) in seen_sinks:
                continue
            seen_sinks.add(id(sink))
            forecast_observers.append(policy)
        # Duration-aware policies additionally duck-type on
        # `observe_duration`: every completion's actual runtime feeds
        # their park-bound widening.  Dedup on the policy itself -- the
        # duration EWMA lives there, not on the shared forecaster.
        duration_observers = []
        seen_policies: set[int] = set()
        for policy in (
            self.autoscaler,
            *(self.shard_autoscalers or {}).values(),
        ):
            if policy is None or not hasattr(policy, "observe_duration"):
                continue
            if id(policy) in seen_policies:
                continue
            seen_policies.add(id(policy))
            duration_observers.append(policy)
        # Serving feeds scopes actively, so pin every shard's scope up
        # front: a shard that never receives a routed arrival then
        # forecasts "drained" instead of falling back to the global
        # stream (the fallback exists for direct pool users who never
        # feed scopes at all).
        for observer in forecast_observers:
            forecaster = getattr(observer, "forecaster", None)
            ensure_scope = getattr(forecaster, "ensure_scope", None)
            if ensure_scope is not None:
                for shard_name in pool.shard_names:
                    ensure_scope(shard_name)
        tuner = self._batch_tuner()
        # One duration model, seeded from the system's master generator,
        # keeps the whole replay deterministic for a given seed.
        duration_model = TaskDurationModel(
            provider=self.system.provider, rng=self.system.rng
        )
        initializer = self.system.job_initializer
        predictor = self.system.predictor

        # Merge the per-tenant traces into one time-ordered column set;
        # the sort is stable, so equal arrival times keep pair order and
        # a single-trace replay preserves its exact trace order.  Both
        # engines drain these columns -- the event engine materialises
        # every arrival upfront, the columnar engine in batches.
        tenant_names = [tenant for tenant, _ in pairs]
        times, query_ids, query_index, input_gbs, tenant_index = (
            merge_arrival_columns(pairs)
        )
        n_arrivals = len(times)

        # SLO-tier serving state, all inert when no tenant declares an
        # SLO and the grant policy does not preempt: deadlines stay
        # None, nothing launches preemptible, and sizing bounds stay
        # unconstrained -- the legacy replay bit for bit.
        preempt_enabled = bool(getattr(self.grant_policy, "preempt", False))
        tenant_slo_map: dict[str, float] = {}
        tenant_tiers: dict[str, str] = {}
        for tenant in tenant_names:
            spec = registry.get(tenant)
            if spec.slo_latency_s is not None:
                tenant_slo_map[tenant] = spec.slo_latency_s
            tenant_tiers[tenant] = spec.tier
        sizing_bounds: dict[str, tuple[int | None, int | None]] | None = None
        if self.quota_priced_sizing:
            sizing_bounds = {
                tenant: (
                    registry.get(tenant).max_leased_vms,
                    registry.get(tenant).max_leased_sls,
                )
                for tenant in tenant_names
            }

        def bounds_for(tenant: str) -> tuple[int | None, int | None]:
            if sizing_bounds is None:
                return (None, None)
            return sizing_bounds.get(tenant, (None, None))

        def make_arrival(position: int) -> _Arrival:
            return _Arrival(
                index=position,
                tenant=tenant_names[tenant_index[position]],
                event=TraceEvent(
                    arrival_s=float(times[position]),
                    query_id=query_ids[query_index[position]],
                    input_gb=float(input_gbs[position]),
                ),
            )

        # Streaming accumulators always run (they are O(capacity));
        # the per-query list is what keep_queries toggles.
        report_stream = ServingStream(
            self.slo_seconds, tenant_slos=tenant_slo_map
        )
        for tenant in tenant_names:
            report_stream.ensure_tenant(tenant)
        served: list[ServedQuery | None] | None = (
            [None] * n_arrivals if self.keep_queries else None
        )
        dropped: list[DroppedQuery] | None = (
            [] if self.keep_queries else None
        )
        pending_admission: dict[str, collections.deque[_Arrival]] = (
            collections.defaultdict(collections.deque)
        )
        # Retry bookkeeping, keyed by arrival index; absent for every
        # arrival the fault plan never touches (see _ArrivalState).
        states: dict[int, _ArrivalState] = {}
        # In-flight counters and completion dispatch live in one flat
        # table (replacing two closures per launch); its admission
        # callbacks are wired below once the admission closures exist.
        table = _CompletionTable(
            stream=report_stream,
            served=served,
            states=states,
            finalize=initializer.finalize,
        )
        if duration_observers or planner is not None:
            def feed_durations(seconds: float) -> None:
                for policy in duration_observers:
                    policy.observe_duration(seconds)
                if planner is not None:
                    planner.observe_duration(seconds)

            table.on_duration = feed_durations
        presample = self.submission != "object"
        vector = self.submission == "vector"
        # Compiled execution plans, keyed by the memoized query object:
        # repeat arrivals of a class skip the per-query scheduler build.
        plans: dict[int, StagePlan] = {}
        # Termination policies are stateless and depend only on which
        # sides of the split are populated, so one instance per shape
        # serves every arrival (the plan-support verdict rides along).
        policy_cache: dict[tuple[bool, bool], tuple[object, bool]] = {}

        def policy_for(n_vm: int, n_sl: int) -> tuple[object, bool]:
            key = (n_vm > 0, n_sl > 0)
            hit = policy_cache.get(key)
            if hit is None:
                policy = initializer.execution_policy(n_vm, n_sl)
                hit = policy_cache[key] = (policy, plan_supports(policy))
            return hit
        # The adaptive engine's currently open sizing group, hoisted so
        # retried/admitted arrivals can join it (shared forest pass)
        # instead of always deciding solo.  Static engines never fill it.
        open_group: list[_Arrival] = []
        fault_seed = self.fault_plan.seed if self.fault_plan is not None else 0

        def retry_u(index: int, attempt: int) -> float:
            # The same stateless hash-uniform scheme the injector uses:
            # backoff jitter is reproducible per (arrival, attempt) and
            # independent of event interleaving.
            key = f"{fault_seed}|retry|{index}|{attempt}"
            return (zlib.crc32(key.encode("utf-8")) + 0.5) / 2**32

        # Class-level decision reuse (see ``decision_reuse``): one cache
        # per replay, invalidated entry-wise when the model retrains.
        # key -> (model_version, context, decision, zero-inference reuse
        # decision); see the cache-hit path in submit_batch.
        decision_cache: dict[tuple, tuple[int, object, object, object]] = {}

        def handle_failure(arrival: _Arrival, st: _ArrivalState) -> None:
            """Retry-or-drop policy applied after the table books a
            failed attempt."""
            if (
                self.retry_policy is not None
                and st.attempts <= self.retry_policy.max_retries
            ):
                delay = self.retry_policy.backoff(
                    st.attempts, retry_u(arrival.index, st.attempts)
                )
                simulator.schedule(delay, lambda: resubmit(arrival))
            else:
                drop(arrival, "failed")

        def launch_group(entries: list[tuple]) -> None:
            """Launch a decided group's arrivals (table entry tuples).

            Pool acquisition order is arrival order, exactly the
            sequential path's; consecutive plan-backed launches lease
            through ONE ``acquire_many`` pass (an unsupported policy
            flushes the run and falls back to ``launch_query``, keeping
            the order).  Task-noise draws also stay in arrival order:
            the duration model and the pool share no rng, so hoisting
            every ``begin()`` ahead of its grant changes no stream.
            """
            observed: list[tuple[_Arrival, object]] = []
            pending: list[tuple[PlanRunner, tuple]] = []

            def flush_pending() -> None:
                if not pending:
                    return
                leases = pool.acquire_many([req for _, req in pending])
                # Binding after the batch is safe: revocation can only
                # fire from a *future* simulator event.
                for (runner, _), lease in zip(pending, leases):
                    runner.bind(lease)
                pending.clear()

            shapes = [policy_for(e[3].n_vm, e[3].n_sl) for e in entries]
            policies = [shape[0] for shape in shapes]
            supported = [shape[1] for shape in shapes] if vector else None
            # When the whole group rides the fast path, draw ONE noise
            # block for the group and hand each runner its slice:
            # ``Generator.normal`` fills arrays sequentially from the
            # bitstream, so a group-sized draw split in entry order is
            # bitwise identical to per-runner draws.
            noise_slices: list[list[float]] | None = None
            if supported is not None and len(entries) > 1 and all(supported):
                sizes = [e[1].total_tasks for e in entries]
                block = duration_model.noise_block(sum(sizes)).tolist()
                noise_slices = []
                offset = 0
                for size in sizes:
                    noise_slices.append(block[offset:offset + size])
                    offset += size

            for position, entry in enumerate(entries):
                arrival, query, _context, decision = entry[:4]
                st = states.get(arrival.index)
                first_attempt = st is None or st.attempts == 0
                policy = policies[position]
                table.register(arrival.index, entry)
                # SLO tiers: the deadline is anchored at the *arrival*
                # (retries keep the original promise), and only
                # batch-tier work is launched preemptible -- an
                # interactive query is never a preemption victim.
                slo = tenant_slo_map.get(arrival.tenant)
                deadline = (
                    arrival.event.arrival_s + slo if slo is not None else None
                )
                if supported is not None and supported[position]:
                    plan = plans.get(id(query))
                    if plan is None:
                        plan = plans[id(query)] = StagePlan(
                            query, duration_model
                        )
                    runner = PlanRunner(
                        plan,
                        pool,
                        duration_model,
                        policy,
                        tenant=arrival.tenant,
                        on_complete=functools.partial(
                            table.complete_runner, arrival.index
                        ),
                        on_failed=functools.partial(
                            table.fail_runner, arrival.index
                        ),
                    )
                    noise = (
                        noise_slices[position]
                        if noise_slices is not None
                        else None
                    )
                    pending.append(
                        (
                            runner,
                            runner.begin(
                                decision.n_vm, decision.n_sl, noise,
                                deadline_s=deadline,
                            ),
                        )
                    )
                    if (
                        forecast_observers or planner is not None
                    ) and first_attempt:
                        observed.append((arrival, runner))
                else:
                    flush_pending()
                    execution = launch_query(
                        query,
                        n_vm=decision.n_vm,
                        n_sl=decision.n_sl,
                        pool=pool,
                        policy=policy,
                        duration_model=duration_model,
                        presample=presample,
                        on_complete=functools.partial(
                            table.complete_execution, arrival.index
                        ),
                        on_failed=functools.partial(
                            table.fail_execution, arrival.index
                        ),
                        tenant=arrival.tenant,
                        deadline_s=deadline,
                        preemptible=(
                            preempt_enabled
                            and tenant_tiers.get(arrival.tenant, "batch")
                            == "batch"
                        ),
                    )
                    if (
                        forecast_observers or planner is not None
                    ) and first_attempt:
                        observed.append((arrival, execution))
            flush_pending()
            for arrival, holder in observed:
                # The lease is routed (and, when capacity allows --
                # stealing included -- granted) synchronously inside
                # the acquire, so lease.shard is the serving shard for
                # every immediate grant.  A lease that *queues* and is
                # later stolen observes its routed home instead: the
                # shard the affinity policy wanted its warmth on.
                # Feeding after the loop is equivalent to feeding
                # between acquires: nothing in the pool reads the
                # forecaster synchronously.
                class_key = self.system.predictor.query_class(
                    arrival.event.query_id, arrival.event.input_gb
                )
                for observer in forecast_observers:
                    observer.observe_arrival(
                        class_key,
                        arrival.event.arrival_s,
                        scope=holder.lease.shard,
                    )
                if planner is not None:
                    # The epoch records the *granted* worker counts (the
                    # lease's, capacity/quota-clamped), not the decided
                    # ones: forecasting clamped demand would re-amplify
                    # exactly what the pool refused to grant.
                    lease = holder.lease
                    planner.observe_arrival(
                        arrival.tenant,
                        class_key,
                        arrival.event.input_gb,
                        shard=lease.shard,
                        n_vm=lease.n_vm,
                        n_sl=lease.n_sl,
                    )

        def submit_batch(batch: list[_Arrival], decide_time: float) -> None:
            # Queries still queued or running when this batch decides are
            # "waiting applications"; members of the batch additionally
            # see the members ahead of them, exactly as if they had been
            # submitted one after another at the same instant.
            waiting_base = table.in_flight_total
            queries = [
                get_query(a.event.query_id, input_gb=a.event.input_gb)
                for a in batch
            ]
            if self.decision_reuse:
                # Class-level reuse: arrivals of the same query class
                # under a similar load octave share one grid decision
                # until the model retrains.  Hits cost no forest pass
                # (inference_seconds=0); misses batch through one
                # vectorised decide_many call.
                version = predictor.model_version
                keys: list[tuple] = []
                slots: list[tuple | None] = [None] * len(batch)
                misses: list[int] = []
                for position, arrival in enumerate(batch):
                    key = (
                        predictor.query_class(
                            arrival.event.query_id, arrival.event.input_gb
                        ),
                        (waiting_base + position).bit_length(),
                        mode,
                        bounds_for(arrival.tenant),
                    )
                    keys.append(key)
                    hit = decision_cache.get(key)
                    if hit is not None and hit[0] == version:
                        # hit[3] is the pre-zeroed reuse decision built
                        # once at insert time (hits cost no forest pass,
                        # so they report inference_seconds=0); sharing
                        # one immutable decision object across hits
                        # replaces a per-arrival dataclasses.replace.
                        slots[position] = (hit[1], hit[3])
                    else:
                        misses.append(position)
                if misses:
                    # One decide_many per distinct quota bound (a single
                    # unconstrained group when sizing ignores quotas).
                    miss_groups: dict[tuple, list[int]] = {}
                    for p in misses:
                        miss_groups.setdefault(keys[p][3], []).append(p)
                    for (bound_vm, bound_sl), positions in miss_groups.items():
                        fresh = initializer.decide_many(
                            [queries[p] for p in positions],
                            knob=knob,
                            mode=mode,
                            num_waiting_apps=waiting_base,
                            max_vm=bound_vm,
                            max_sl=bound_sl,
                        )
                        for p, (context, decision) in zip(positions, fresh):
                            slots[p] = (context, decision)
                            # Re-read the version: a retrain during
                            # decide (alien-triggered) must not
                            # resurrect entries.
                            decision_cache[keys[p]] = (
                                predictor.model_version,
                                context,
                                decision,
                                dataclasses.replace(
                                    decision, inference_seconds=0.0
                                ),
                            )
                decided = slots
            elif len(batch) == 1:
                bound_vm, bound_sl = bounds_for(batch[0].tenant)
                decided = [
                    initializer.decide(
                        queries[0],
                        knob=knob,
                        mode=mode,
                        num_waiting_apps=waiting_base,
                        max_vm=bound_vm,
                        max_sl=bound_sl,
                    )
                ]
            else:
                batch_bounds = {bounds_for(a.tenant) for a in batch}
                if len(batch_bounds) == 1:
                    bound_vm, bound_sl = next(iter(batch_bounds))
                    decided = initializer.decide_many(
                        queries,
                        knob=knob,
                        mode=mode,
                        num_waiting_apps=waiting_base,
                        max_vm=bound_vm,
                        max_sl=bound_sl,
                    )
                else:
                    # Mixed quota bounds in one coalesced group: size
                    # per arrival so each query's grid honours its own
                    # tenant's cap (and its exact waiting count).
                    decided = [
                        initializer.decide(
                            query,
                            knob=knob,
                            mode=mode,
                            num_waiting_apps=waiting_base + position,
                            max_vm=bounds_for(arrival.tenant)[0],
                            max_sl=bounds_for(arrival.tenant)[1],
                        )
                        for position, (arrival, query) in enumerate(
                            zip(batch, queries)
                        )
                    ]
            if tuner is not None:
                # Per-query inference_seconds amortise one pass equally,
                # so their sum is the measured wall time of this pass.
                tuner.observe_decision(
                    sum(decision.inference_seconds for _, decision in decided)
                )
            entries: list[tuple] = []
            for offset, (arrival, query, (context, decision)) in enumerate(
                zip(batch, queries, decided)
            ):
                st = states.get(arrival.index)
                if st is None:
                    batching_delay = decide_time - arrival.event.arrival_s
                    admission_delay = 0.0
                    if simulator.now > decide_time:
                        # Re-submitted through the admission gate: the
                        # wait past the group's window close is
                        # admission delay.
                        admission_delay = simulator.now - decide_time
                else:
                    # Stateful arrivals accumulate spans from wherever
                    # attribution last stopped, so the components still
                    # sum to submit-time minus arrival-time.
                    st.batching += max(decide_time - st.basis, 0.0)
                    st.basis = decide_time
                    if simulator.now > decide_time:
                        st.admission += simulator.now - decide_time
                        st.basis = simulator.now
                    batching_delay = st.batching
                    admission_delay = st.admission
                entries.append((
                    arrival,
                    query,
                    context,
                    decision,
                    waiting_base + offset,
                    len(batch),
                    batching_delay,
                    admission_delay,
                ))
            launch_group(entries)

        def admits(arrival: _Arrival, admitted_ahead: int) -> bool:
            cap = registry.get(arrival.tenant).max_in_flight
            if cap is None:
                return True
            return (
                table.tenant_in_flight[arrival.tenant] + admitted_ahead < cap
            )

        def admit_next(tenant: str) -> None:
            """A termination freed an in-flight slot; admit one waiter."""
            queue = pending_admission.get(tenant)
            if not queue or not admits(queue[0], 0):
                return
            arrival = queue.popleft()
            st = states.get(arrival.index)
            if st is not None:
                # A retried arrival re-enters the gate: the wait since
                # its resubmission is admission delay.
                st.admission += simulator.now - st.basis
                st.basis = simulator.now
                enter(arrival)
            elif tuner is not None and open_group:
                # Adaptive coalescing: the freed slot lands while a
                # sizing group is open -- join it and share the
                # imminent forest pass instead of deciding solo.
                st = states[arrival.index] = _ArrivalState()
                st.admission = simulator.now - arrival.event.arrival_s
                st.basis = simulator.now
                open_group.append(arrival)
            else:
                submit_batch([arrival], decide_time=arrival.event.arrival_s)

        def enter(arrival: _Arrival) -> None:
            """Submit a retried/re-admitted arrival for sizing now."""
            if tuner is not None and open_group:
                open_group.append(arrival)
                return
            submit_batch([arrival], decide_time=simulator.now)

        def defer(arrival: _Arrival) -> None:
            """Queue at the admission gate, shedding over the bound."""
            queue = pending_admission[arrival.tenant]
            if (
                self.max_pending_admission is not None
                and len(queue) >= self.max_pending_admission
            ):
                drop(arrival, "shed")
                return
            queue.append(arrival)

        def resubmit(arrival: _Arrival) -> None:
            """The backoff expired: route the retry back through
            admission, the quota gate and the coalescer."""
            st = states[arrival.index]
            st.retries += 1
            # Cumulative by construction: total elapsed minus what the
            # other components already claimed.
            st.retry_delay = (
                simulator.now - arrival.event.arrival_s
                - st.admission - st.batching
            )
            st.basis = simulator.now
            if admits(arrival, 0):
                enter(arrival)
            else:
                defer(arrival)

        def drop(arrival: _Arrival, reason: str) -> None:
            """Terminate an arrival without serving it (loudly counted)."""
            st = states.pop(arrival.index, None)
            record = DroppedQuery(
                arrival_s=arrival.event.arrival_s,
                query_id=arrival.event.query_id,
                tenant=arrival.tenant,
                reason=reason,
                n_retries=st.retries if st is not None else 0,
                wasted_cost_dollars=st.wasted if st is not None else 0.0,
            )
            report_stream.observe_drop(record)
            table.n_terminated += 1
            if dropped is not None:
                dropped.append(record)

        def submit_group(group: list[_Arrival], decide_time: float) -> None:
            admitted: list[_Arrival] = []
            for arrival in group:
                ahead = sum(
                    1 for a in admitted if a.tenant == arrival.tenant
                )
                if admits(arrival, ahead):
                    admitted.append(arrival)
                else:
                    defer(arrival)
            if admitted:
                submit_batch(admitted, decide_time=decide_time)

        table.admit_next = admit_next
        table.on_failure = handle_failure

        # The adaptive coalescer is event-driven: each arrival either
        # joins the open group (hoisted above, so retries and gate
        # re-admissions can join it too), opens a new one that closes
        # after the tuner's *current* window, or -- when the window is
        # 0 -- decides solo immediately (the break-even says a wait is
        # not worth a shared pass right now).  Both engines share these
        # handlers; static engines never call them.
        def close_group() -> None:
            group = list(open_group)
            open_group.clear()
            submit_group(group, decide_time=simulator.now)

        def on_arrival(arrival: _Arrival) -> None:
            tuner.observe_arrival(arrival.event.arrival_s)
            if open_group:
                open_group.append(arrival)
                return
            window = tuner.window()
            if window <= 0.0:
                submit_group([arrival], decide_time=simulator.now)
                return
            open_group.append(arrival)
            simulator.schedule(window, close_group)

        # Epoch boundaries are ordinary simulator events, so both engines
        # interleave them with arrivals identically: the first tick is
        # created before any runtime event exists, and arrival-vs-tick
        # ties resolve arrival-first on both engines (upfront arrivals
        # carry smaller sequence numbers; ``run_before`` drains strictly
        # before the tick's timestamp).  Ticks stop after the last
        # arrival -- a plan nobody will arrive to use is wasted money.
        epochs_planned = 0
        last_arrival_s = float(times[-1]) if n_arrivals else 0.0
        if planner is not None and n_arrivals:
            planner.begin(float(times[0]))

        def start_epoch_ticks() -> None:
            if planner is None or n_arrivals == 0:
                return
            first_end = float(times[0]) + planner.epoch_s
            if first_end > last_arrival_s:
                return

            def epoch_tick() -> None:
                nonlocal epochs_planned
                pool.apply_plan(planner.on_epoch_end(pool, simulator.now))
                epochs_planned += 1
                next_end = simulator.now + planner.epoch_s
                if next_end <= last_arrival_s:
                    simulator.schedule_at(next_end, epoch_tick)

            simulator.schedule_at(first_end, epoch_tick)

        if self.engine == "columnar":
            start_epoch_ticks()
            # Drain the columns group by group instead of scheduling one
            # EventHandle per arrival.  ``run_before(fire)`` drains every
            # pending event strictly before the group's decide time, and
            # the group then fires synchronously -- the same ordering the
            # event engine produces, where upfront-scheduled groups have
            # smaller sequence numbers than any runtime event at the same
            # timestamp and therefore fire first.
            fuse = max(DEFAULT_EVENT_BUDGET, 64 * n_arrivals)
            if tuner is None:
                for start, end in _group_bounds(times, self.batch_window_s):
                    fire = float(times[end - 1])
                    simulator.run_before(fire, max_events=fuse)
                    submit_group(
                        [make_arrival(i) for i in range(start, end)],
                        decide_time=fire,
                    )
            else:
                # Adaptive columnar drain: arrivals feed the tuner one
                # at a time, so group boundaries (which depend on the
                # tuner's evolving window) match the event engine's
                # arrival-by-arrival order exactly.  A ``close_group``
                # scheduled *at* the next arrival's timestamp fires
                # after it, same as the event engine's tie-break for
                # upfront-scheduled arrival events.
                ticks = times.tolist()
                for position in range(n_arrivals):
                    simulator.run_before(ticks[position], max_events=fuse)
                    on_arrival(make_arrival(position))
            simulator.run(max_events=fuse)
        elif tuner is None:
            stream = [make_arrival(i) for i in range(n_arrivals)]
            for group in self._coalesce(stream):
                # The group decides when its window closes: the last
                # member's arrival.  Solo groups (the default-window
                # common case) fire at their own arrival time, exactly
                # as before.
                simulator.schedule_at(
                    group[-1].event.arrival_s,
                    lambda group=group: submit_group(
                        group, group[-1].event.arrival_s
                    ),
                )
            start_epoch_ticks()
            simulator.run()
        else:
            for position in range(n_arrivals):
                arrival = make_arrival(position)
                simulator.schedule_at(
                    arrival.event.arrival_s,
                    lambda arrival=arrival: on_arrival(arrival),
                )
            start_epoch_ticks()
            simulator.run()
        pool.shutdown()
        table.flush()
        if table.n_terminated != n_arrivals:
            raise RuntimeError("some trace arrivals never completed")
        if report_stream.n_shed > 0:
            # Load shedding rejects work the trace asked for; never do
            # that silently.
            warnings.warn(
                f"{report_stream.n_shed} arrivals shed at the admission "
                f"gate (max_pending_admission="
                f"{self.max_pending_admission}); the report's shed_rate "
                "reflects rejected work",
                RuntimeWarning,
                stacklevel=3,
            )
        if self._default_pool and pool.stats.leases_queued > 0:
            # The default pool is wide, but any finite cap can contend.
            # Queueing under the *default* config means the replay no
            # longer matches the paper's contention-free serving model --
            # make that loud rather than silently different.
            warnings.warn(
                f"{pool.stats.leases_queued} arrivals queued for capacity "
                "under the default pool config; pass an explicit "
                "PoolConfig sized for this trace (or expect queueing "
                "delays in the report)",
                RuntimeWarning,
                stacklevel=3,
            )
        return ServingReport(
            served=(
                [record for record in served if record is not None]
                if served is not None
                else []
            ),
            slo_seconds=self.slo_seconds,
            pool_stats=pool.stats,
            keepalive_cost_dollars=pool.keepalive_cost_dollars,
            keepalive_cost_by_shard=pool.keepalive_cost_by_shard,
            tenant_weights={
                tenant: registry.weight(tenant) for tenant, _ in pairs
            },
            tenant_peaks=pool.tenant_peaks,
            dropped=dropped if dropped is not None else [],
            wasted_cost_dollars=pool.wasted_cost_dollars,
            wasted_cost_by_shard=pool.wasted_cost_by_shard,
            epochs_planned=epochs_planned,
            prewarm_cost_dollars=pool.prewarm_cost_dollars,
            tenant_in_flight_peaks=table.in_flight_peaks,
            tenant_slos=dict(tenant_slo_map),
            stream=report_stream,
        )
