"""Trace-driven serving: a day in the life of a Smartpick deployment.

The evaluation exercises queries one at a time; a deployed data analytics
system instead faces a *stream* of ad-hoc arrivals (Section 2.1).  The
:class:`ServingSimulator` replays a :class:`~repro.workloads.trace.WorkloadTrace`
through a bootstrapped Smartpick **inside one shared discrete-event
simulation**:

- every arrival is scheduled as an event at its trace time and submitted
  through the full Figure 3 workflow when it fires,
- all queries execute concurrently against one shared
  :class:`~repro.cloud.pool.ClusterPool` -- overlapping arrivals contend
  for pool capacity, queue FIFO when it saturates, and (with keep-alive
  enabled) inherit each other's still-warm workers,
- the number of still-in-flight earlier queries feeds the
  ``num-waiting-apps`` feature of Table 3,
- aliens, retrains, per-query bills, queueing delays and the pool's
  warm-start behaviour are accounted into a :class:`ServingReport` with
  latency percentiles, total cost (including keep-alive spend) and SLO
  attainment.

The default pool is cold (no keep-alive) and wide enough that typical
traces do not contend, which reproduces the paper's
fresh-instances-per-query serving model; a ``RuntimeWarning`` fires if a
heavy trace saturates it anyway.  Pass a tighter
:class:`~repro.cloud.pool.PoolConfig` or an autoscaler to study warm
starts and saturation deliberately.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from repro.cloud.pool import AutoscalerPolicy, ClusterPool, PoolConfig, PoolStats
from repro.core.job import SubmissionOutcome
from repro.core.smartpick import Smartpick
from repro.engine.runner import QueryExecution, launch_query
from repro.engine.simulator import Simulator
from repro.engine.task import TaskDurationModel
from repro.workloads import get_query
from repro.workloads.trace import TraceEvent, WorkloadTrace

__all__ = ["ServedQuery", "ServingReport", "ServingSimulator"]


@dataclasses.dataclass(frozen=True)
class ServedQuery:
    """One arrival and its outcome."""

    arrival_s: float
    outcome: SubmissionOutcome
    waiting_apps_at_submit: int
    #: Time spent waiting for pool capacity before workers were assigned.
    #: The outcome's actual duration is pure execution time, so the
    #: user-visible latency is the sum of the two.
    queueing_delay_s: float = 0.0
    #: How many arrivals shared this query's sizing pass -- 1 when the
    #: query was decided alone, >= 2 when the arrival coalescer routed it
    #: through one ``determine_batch`` forest pass with its neighbours.
    decision_batch_size: int = 1
    #: Time the arrival waited for its coalescing window to close before
    #: sizing began (0 outside micro-batched serving).
    batching_delay_s: float = 0.0

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (batching + queueing + execution)."""
        return (
            self.batching_delay_s
            + self.queueing_delay_s
            + self.outcome.actual_seconds
        )

    @property
    def completion_s(self) -> float:
        return self.arrival_s + self.latency_s


@dataclasses.dataclass
class ServingReport:
    """Aggregate view of one trace replay."""

    served: list[ServedQuery]
    slo_seconds: float
    pool_stats: PoolStats | None = None
    keepalive_cost_dollars: float = 0.0

    @property
    def n_queries(self) -> int:
        return len(self.served)

    @property
    def latencies(self) -> np.ndarray:
        return np.array([s.latency_s for s in self.served])

    @property
    def queueing_delays(self) -> np.ndarray:
        return np.array([s.queueing_delay_s for s in self.served])

    @property
    def query_cost_dollars(self) -> float:
        """Sum of the per-query bills (excluding keep-alive spend)."""
        return float(sum(s.outcome.cost_dollars for s in self.served))

    @property
    def total_cost_dollars(self) -> float:
        """The full bill: per-query charges plus pool keep-alive cost."""
        return self.query_cost_dollars + self.keepalive_cost_dollars

    @property
    def warm_start_rate(self) -> float:
        """Fraction of worker acquisitions served warm from the pool."""
        if self.pool_stats is None:
            return 0.0
        return self.pool_stats.warm_start_rate

    @property
    def decision_seconds(self) -> np.ndarray:
        """Per-query Workload Predictor decision latency (inference time).

        The predictor sits inline on every arrival, so this is the
        serving-side overhead the inference engines exist to shrink;
        track it per replay to catch hot-path regressions.

        Attribution semantics: an arrival decided alone carries its own
        measured decision time; an arrival sized in a coalesced group
        (``decision_batch_size >= 2``) carries the group's shared
        ``determine_batch`` time *amortised equally* across the group,
        so :attr:`total_decision_seconds` always equals the wall time
        the replay actually spent deciding.
        """
        return np.array(
            [s.outcome.decision.inference_seconds for s in self.served]
        )

    @property
    def batched_decision_rate(self) -> float:
        """Fraction of queries sized through a shared forest pass."""
        if not self.served:
            return 0.0
        return float(
            np.mean([s.decision_batch_size >= 2 for s in self.served])
        )

    def decision_latency_percentile(self, percentile: float) -> float:
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.decision_seconds, percentile))

    @property
    def total_decision_seconds(self) -> float:
        """Cumulative time spent inside resource determination."""
        return float(self.decision_seconds.sum())

    @property
    def n_aliens(self) -> int:
        return sum(1 for s in self.served if s.outcome.is_alien)

    @property
    def n_retrains(self) -> int:
        return sum(1 for s in self.served if s.outcome.retrain_event)

    def latency_percentile(self, percentile: float) -> float:
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.latencies, percentile))

    def queueing_delay_percentile(self, percentile: float) -> float:
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.queueing_delays, percentile))

    @property
    def slo_attainment(self) -> float:
        """Fraction of queries finishing within the SLO."""
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.mean(self.latencies <= self.slo_seconds))

    def summary(self) -> str:
        text = (
            f"{self.n_queries} queries: p50 {self.latency_percentile(50):.1f}s, "
            f"p95 {self.latency_percentile(95):.1f}s, "
            f"SLO({self.slo_seconds:.0f}s) {100 * self.slo_attainment:.0f}%, "
            f"total {100 * self.total_cost_dollars:.1f} cents, "
            f"{self.n_aliens} aliens, {self.n_retrains} retrains"
        )
        if self.pool_stats is not None and self.pool_stats.acquisitions:
            text += (
                f", {100 * self.warm_start_rate:.0f}% warm starts, "
                f"queue p95 {self.queueing_delay_percentile(95):.1f}s, "
                f"keep-alive {100 * self.keepalive_cost_dollars:.2f} cents"
            )
        if self.batched_decision_rate > 0:
            text += (
                f", {100 * self.batched_decision_rate:.0f}% batched decisions"
            )
        return text


class ServingSimulator:
    """Replays a workload trace through a bootstrapped Smartpick.

    Parameters
    ----------
    system:
        A bootstrapped :class:`~repro.core.smartpick.Smartpick`.
    slo_seconds:
        The latency SLO reported against.
    pool_config:
        Sizing/keep-alive of the shared cluster; the default is a wide
        cold pool (fresh instances per query, no contention) matching the
        paper's serving model.
    autoscaler:
        Optional keep-alive policy overriding the config's fixed windows.
    batch_window_s:
        Arrival coalescing window for micro-batched sizing.  Arrivals
        landing within ``batch_window_s`` of a group's first member are
        sized together through one vectorized ``determine_batch`` forest
        pass when the group closes (its last member's arrival time); the
        wait for the window is accounted per query as
        ``batching_delay_s``.  The default ``0.0`` only coalesces
        *exact-tick* arrivals, which wait for nothing; ``None`` disables
        coalescing entirely (every arrival decided alone through the BO
        path, the pre-coalescer behaviour, bit for bit).
    """

    def __init__(
        self,
        system: Smartpick,
        slo_seconds: float = 120.0,
        pool_config: PoolConfig | None = None,
        autoscaler: AutoscalerPolicy | None = None,
        batch_window_s: float | None = 0.0,
    ) -> None:
        if slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if batch_window_s is not None and batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative (or None)")
        if not system.predictor.is_trained:
            raise ValueError("bootstrap the system before serving a trace")
        self.system = system
        self.slo_seconds = slo_seconds
        self._default_pool = pool_config is None
        self.pool_config = pool_config or PoolConfig()
        self.autoscaler = autoscaler
        self.batch_window_s = batch_window_s

    def _coalesce(self, trace: WorkloadTrace) -> list[list[tuple[int, TraceEvent]]]:
        """Group trace arrivals into sizing batches.

        A group collects consecutive arrivals within ``batch_window_s``
        of its *first* member (so windows never chain unboundedly); with
        the default window of 0 only exact-tick arrivals share a group,
        and with ``batch_window_s=None`` every arrival stands alone.
        """
        groups: list[list[tuple[int, TraceEvent]]] = []
        for index, event in enumerate(trace):
            if (
                self.batch_window_s is not None
                and groups
                and event.arrival_s - groups[-1][0][1].arrival_s
                <= self.batch_window_s
            ):
                groups[-1].append((index, event))
            else:
                groups.append([(index, event)])
        return groups

    def replay(
        self,
        trace: WorkloadTrace,
        knob: float | None = None,
        mode: str = "hybrid",
    ) -> ServingReport:
        """Serve every arrival of ``trace`` in one shared simulation.

        Arrivals are interleaved events on a single simulator: a query
        submitted while earlier ones are still running contends with them
        for pool capacity instead of executing in a vacuum.  Arrivals
        coalesced into one sizing group (see ``batch_window_s``) share a
        single vectorized forest pass; a solo arrival goes through the
        per-query BO determination exactly as before.
        """
        simulator = Simulator()
        pool = ClusterPool(
            simulator,
            provider=self.system.provider,
            prices=self.system.prices,
            config=self.pool_config,
            autoscaler=self.autoscaler,
        )
        # One duration model, seeded from the system's master generator,
        # keeps the whole replay deterministic for a given seed.
        duration_model = TaskDurationModel(
            provider=self.system.provider, rng=self.system.rng
        )
        initializer = self.system.job_initializer
        served: list[ServedQuery | None] = [None] * len(trace)
        in_flight = 0

        def launch(
            index: int,
            event: TraceEvent,
            query,
            context,
            decision,
            waiting: int,
            batch_size: int,
            batching_delay: float,
        ) -> None:
            nonlocal in_flight
            policy = initializer.execution_policy(decision.n_vm, decision.n_sl)

            def complete(execution: QueryExecution) -> None:
                nonlocal in_flight
                in_flight -= 1
                assert execution.result is not None
                outcome = initializer.finalize(
                    query,
                    context,
                    decision,
                    execution.result,
                    # A clamped lease executed a different configuration
                    # than predicted; its error says nothing about the
                    # model (the run itself still feeds the history).
                    observe_error=not execution.lease.was_clamped,
                )
                served[index] = ServedQuery(
                    arrival_s=event.arrival_s,
                    outcome=outcome,
                    waiting_apps_at_submit=waiting,
                    queueing_delay_s=execution.result.queueing_delay_s,
                    decision_batch_size=batch_size,
                    batching_delay_s=batching_delay,
                )

            in_flight += 1
            launch_query(
                query,
                n_vm=decision.n_vm,
                n_sl=decision.n_sl,
                pool=pool,
                policy=policy,
                duration_model=duration_model,
                on_complete=complete,
            )

        def submit_group(group: list[tuple[int, TraceEvent]]) -> None:
            # Queries still queued or running when this group decides are
            # "waiting applications"; members of the group additionally
            # see the members ahead of them, exactly as if they had been
            # submitted one after another at the same instant.
            waiting_base = in_flight
            queries = [
                get_query(event.query_id, input_gb=event.input_gb)
                for _, event in group
            ]
            if len(group) == 1:
                decided = [
                    initializer.decide(
                        queries[0],
                        knob=knob,
                        mode=mode,
                        num_waiting_apps=waiting_base,
                    )
                ]
            else:
                decided = initializer.decide_many(
                    queries,
                    knob=knob,
                    mode=mode,
                    num_waiting_apps=waiting_base,
                )
            group_time = group[-1][1].arrival_s
            for offset, ((index, event), query, (context, decision)) in enumerate(
                zip(group, queries, decided)
            ):
                launch(
                    index,
                    event,
                    query,
                    context,
                    decision,
                    waiting=waiting_base + offset,
                    batch_size=len(group),
                    batching_delay=group_time - event.arrival_s,
                )

        for group in self._coalesce(trace):
            # The group decides when its window closes: the last member's
            # arrival.  Solo groups (the default-window common case) fire
            # at their own arrival time, exactly as before.
            simulator.schedule_at(
                group[-1][1].arrival_s,
                lambda group=group: submit_group(group),
            )
        simulator.run()
        pool.shutdown()
        if any(record is None for record in served):
            raise RuntimeError("some trace arrivals never completed")
        if self._default_pool and pool.stats.leases_queued > 0:
            # The default pool is wide, but any finite cap can contend.
            # Queueing under the *default* config means the replay no
            # longer matches the paper's contention-free serving model --
            # make that loud rather than silently different.
            warnings.warn(
                f"{pool.stats.leases_queued} arrivals queued for capacity "
                "under the default pool config; pass an explicit "
                "PoolConfig sized for this trace (or expect queueing "
                "delays in the report)",
                RuntimeWarning,
                stacklevel=2,
            )
        return ServingReport(
            served=[record for record in served if record is not None],
            slo_seconds=self.slo_seconds,
            pool_stats=pool.stats,
            keepalive_cost_dollars=pool.keepalive_cost_dollars,
        )
