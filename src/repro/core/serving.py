"""Trace-driven serving: a day in the life of a Smartpick deployment.

The evaluation exercises queries one at a time; a deployed data analytics
system instead faces a *stream* of ad-hoc arrivals (Section 2.1).  The
:class:`ServingSimulator` replays a :class:`~repro.workloads.trace.WorkloadTrace`
through a bootstrapped Smartpick:

- each arrival is submitted through the full Figure 3 workflow,
- the number of still-in-flight earlier queries feeds the
  ``num-waiting-apps`` feature of Table 3,
- aliens, retrains and per-query bills are accounted into a
  :class:`ServingReport` with latency percentiles, total cost and SLO
  attainment.

Queries run on their own dynamically spawned workers (the paper's model:
static resources handle recurring queries; dynamic queries get fresh
SL/VM instances), so concurrent arrivals do not contend for executors --
they contend for the *budget*, which is exactly what the report shows.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.job import SubmissionOutcome
from repro.core.smartpick import Smartpick
from repro.workloads import get_query
from repro.workloads.trace import WorkloadTrace

__all__ = ["ServedQuery", "ServingReport", "ServingSimulator"]


@dataclasses.dataclass(frozen=True)
class ServedQuery:
    """One arrival and its outcome."""

    arrival_s: float
    outcome: SubmissionOutcome
    waiting_apps_at_submit: int

    @property
    def completion_s(self) -> float:
        return self.arrival_s + self.outcome.actual_seconds


@dataclasses.dataclass
class ServingReport:
    """Aggregate view of one trace replay."""

    served: list[ServedQuery]
    slo_seconds: float

    @property
    def n_queries(self) -> int:
        return len(self.served)

    @property
    def latencies(self) -> np.ndarray:
        return np.array([s.outcome.actual_seconds for s in self.served])

    @property
    def total_cost_dollars(self) -> float:
        return float(sum(s.outcome.cost_dollars for s in self.served))

    @property
    def n_aliens(self) -> int:
        return sum(1 for s in self.served if s.outcome.is_alien)

    @property
    def n_retrains(self) -> int:
        return sum(1 for s in self.served if s.outcome.retrain_event)

    def latency_percentile(self, percentile: float) -> float:
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.percentile(self.latencies, percentile))

    @property
    def slo_attainment(self) -> float:
        """Fraction of queries finishing within the SLO."""
        if not self.served:
            raise ValueError("the report is empty")
        return float(np.mean(self.latencies <= self.slo_seconds))

    def summary(self) -> str:
        return (
            f"{self.n_queries} queries: p50 {self.latency_percentile(50):.1f}s, "
            f"p95 {self.latency_percentile(95):.1f}s, "
            f"SLO({self.slo_seconds:.0f}s) {100 * self.slo_attainment:.0f}%, "
            f"total {100 * self.total_cost_dollars:.1f} cents, "
            f"{self.n_aliens} aliens, {self.n_retrains} retrains"
        )


class ServingSimulator:
    """Replays a workload trace through a bootstrapped Smartpick."""

    def __init__(
        self,
        system: Smartpick,
        slo_seconds: float = 120.0,
    ) -> None:
        if slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not system.predictor.is_trained:
            raise ValueError("bootstrap the system before serving a trace")
        self.system = system
        self.slo_seconds = slo_seconds

    def replay(
        self,
        trace: WorkloadTrace,
        knob: float | None = None,
        mode: str = "hybrid",
    ) -> ServingReport:
        """Serve every arrival of ``trace`` in order."""
        in_flight: list[ServedQuery] = []
        served: list[ServedQuery] = []
        for event in trace:
            # Queries still running when this one arrives are "waiting
            # applications" from the new query's point of view.
            in_flight = [
                q for q in in_flight if q.completion_s > event.arrival_s
            ]
            waiting = len(in_flight)
            outcome = self.system.submit(
                get_query(event.query_id, input_gb=event.input_gb),
                knob=knob,
                mode=mode,
                num_waiting_apps=waiting,
            )
            record = ServedQuery(
                arrival_s=event.arrival_s,
                outcome=outcome,
                waiting_apps_at_submit=waiting,
            )
            in_flight.append(record)
            served.append(record)
        return ServingReport(served=served, slo_seconds=self.slo_seconds)
