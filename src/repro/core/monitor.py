"""Monitor & Feature Extraction (MFE).

Figure 3's MFE sits between the Workload Prediction module and the History
Server: it assembles the prediction inputs for an incoming query (steps
3-5), records finished executions, and -- via an "independent monitor
thread" in the prototype -- compares actual and predicted completion times
to decide whether background retraining must fire (step 9, Section 4.2).
"""

from __future__ import annotations

import dataclasses

from repro.core.config import SmartpickProperties
from repro.core.features import FeatureVector
from repro.core.history import ExecutionRecord, HistoryServer
from repro.core.predictor import PredictionRequest, WorkloadPredictor
from repro.core.similarity import QueryAttributes, SimilarityChecker
from repro.engine.dag import QuerySpec
from repro.engine.runner import QueryRunResult

__all__ = ["MonitorAndFeatureExtraction", "RequestContext"]


def map_task_count(query: QuerySpec) -> int:
    """Tasks in the query's scan (map) stages -- an SC attribute."""
    return sum(
        stage.n_tasks for stage in query.stages if stage.task_input_mb > 0
    )


@dataclasses.dataclass(frozen=True)
class RequestContext:
    """A prediction request plus how it was derived."""

    request: PredictionRequest
    is_alien: bool
    similar_query_id: str | None
    similarity: float | None


class MonitorAndFeatureExtraction:
    """Feature assembly, run recording and prediction-error monitoring."""

    def __init__(
        self,
        history: HistoryServer,
        similarity: SimilarityChecker,
        properties: SmartpickProperties,
    ) -> None:
        self.history = history
        self.similarity = similarity
        self.properties = properties

    # ------------------------------------------------------------------
    # Prediction inputs (workflow steps 2-5)
    # ------------------------------------------------------------------

    def build_request(
        self,
        query: QuerySpec,
        predictor: WorkloadPredictor,
        num_waiting_apps: int = 0,
    ) -> RequestContext:
        """Assemble the WP inputs for ``query``.

        Known queries read their historical duration straight from the
        History Server.  Alien queries go through the Similarity Checker,
        which parses the SQL and returns the closest known identifier
        whose history then stands in (Section 4.2).
        """
        epoch = self.history.next_epoch()
        if predictor.is_known(query.query_id):
            historical = self.history.historical_duration(query.query_id)
            request = PredictionRequest(
                query_id=query.query_id,
                input_size_gb=query.input_gb,
                start_time_epoch=epoch,
                historical_duration_s=historical,
                num_waiting_apps=num_waiting_apps,
            )
            return RequestContext(
                request=request,
                is_alien=False,
                similar_query_id=None,
                similarity=None,
            )

        attributes = QueryAttributes.from_sql(query.sql, map_task_count(query))
        match = self.similarity.closest(attributes)
        historical = self.history.historical_duration(match.query_id)
        request = PredictionRequest(
            query_id=query.query_id,
            input_size_gb=query.input_gb,
            start_time_epoch=epoch,
            historical_duration_s=historical,
            num_waiting_apps=num_waiting_apps,
        )
        return RequestContext(
            request=request,
            is_alien=True,
            similar_query_id=match.query_id,
            similarity=match.similarity,
        )

    # ------------------------------------------------------------------
    # Run recording (workflow step 9)
    # ------------------------------------------------------------------

    def record_run(
        self,
        query: QuerySpec,
        context: RequestContext,
        result: QueryRunResult,
    ) -> ExecutionRecord:
        """Persist a finished execution into the History Server.

        The stored feature vector is the one the model *saw* at decision
        time (for aliens that includes the neighbour's historical
        duration), so retraining learns from exactly the inputs that will
        recur at prediction time.
        """
        features = context.request.feature_vector(result.n_vm, result.n_sl)
        record = ExecutionRecord(
            query_id=query.query_id,
            features=features,
            duration_s=result.completion_seconds,
            cost_dollars=result.cost_dollars,
            provider=result.provider,
            relay=self.properties.relay,
        )
        self.history.record(record)
        return record

    # ------------------------------------------------------------------
    # Error monitoring (the independent monitor thread)
    # ------------------------------------------------------------------

    def prediction_error(self, predicted_s: float, actual_s: float) -> float:
        """Absolute difference between predicted and actual durations."""
        return abs(actual_s - predicted_s)

    def error_exceeds_trigger(self, predicted_s: float, actual_s: float) -> bool:
        """Whether the error crosses ``errorDifference.trigger``."""
        return (
            self.prediction_error(predicted_s, actual_s)
            > self.properties.error_difference_trigger
        )
