"""Smartpick properties (Table 4 of the paper).

Spark applications configure Smartpick purely through properties -- no code
changes (Section 5).  :class:`SmartpickProperties` carries the same keys
with the same defaults:

==========================================  =========
key                                         default
==========================================  =========
``smartpick.cloud.compute.provider``        ``AWS``
``smartpick.cloud.compute.instanceFamily``  ``t3``
``smartpick.cloud.compute.relay``           ``True``
``smartpick.cloud.compute.knob``            ``0``
``smartpick.train.max.batch``               ``100``
``smartpick.train.pref.sameInstance``       ``False``
``smartpick.train.min.ram.gb``              ``4``
``smartpick.train.errorDifference.trigger`` ``50``
==========================================  =========
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

__all__ = ["SmartpickProperties"]

_KEY_TO_FIELD = {
    "smartpick.cloud.compute.provider": "provider",
    "smartpick.cloud.compute.instanceFamily": "instance_family",
    "smartpick.cloud.compute.relay": "relay",
    "smartpick.cloud.compute.knob": "knob",
    "smartpick.train.max.batch": "max_batch",
    "smartpick.train.pref.sameInstance": "prefer_same_instance",
    "smartpick.train.min.ram.gb": "min_ram_gb",
    "smartpick.train.errorDifference.trigger": "error_difference_trigger",
    "smartpick.history.window": "history_window",
}
_FIELD_TO_KEY = {field: key for key, field in _KEY_TO_FIELD.items()}

_TRUTHY = {"true", "1", "yes", "on"}
_FALSY = {"false", "0", "no", "off"}


def _parse_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in _TRUTHY:
        return True
    if text in _FALSY:
        return False
    raise ValueError(f"cannot interpret {value!r} as a boolean property")


@dataclasses.dataclass
class SmartpickProperties:
    """Typed view of the Table 4 property set.

    Attributes
    ----------
    provider:
        Target cloud (``smartpick.cloud.compute.provider``).
    instance_family:
        Worker instance family; ``t3`` in the evaluation.  Larger families
        trade extra cost for memory locality (Section 7).
    relay:
        Enable the relay-instances mechanism
        (``smartpick.cloud.compute.relay``).
    knob:
        Cost-performance tradeoff epsilon (``smartpick.cloud.compute.knob``);
        0 requests best performance regardless of cost (Section 3.3).
    max_batch:
        Batch size for incremental background retraining
        (``smartpick.train.max.batch``).
    prefer_same_instance:
        Retrain on the same instance when memory allows
        (``smartpick.train.pref.sameInstance``).
    min_ram_gb:
        Minimum free memory for same-instance retraining
        (``smartpick.train.min.ram.gb``).
    error_difference_trigger:
        Retrain when ``|actual - predicted|`` exceeds this many seconds
        (``smartpick.train.errorDifference.trigger``).
    history_window:
        Keep only this many execution records per query in the History
        Server (``smartpick.history.window``); ``None`` (the default)
        keeps the full unbounded log.  Million-arrival replays set a
        window so history memory and duration lookups stay bounded.
    """

    provider: str = "AWS"
    instance_family: str = "t3"
    relay: bool = True
    knob: float = 0.0
    max_batch: int = 100
    prefer_same_instance: bool = False
    min_ram_gb: float = 4.0
    error_difference_trigger: float = 50.0
    history_window: int | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.provider.lower() not in ("aws", "gcp"):
            raise ValueError(
                f"unsupported provider {self.provider!r} (use AWS or GCP)"
            )
        if self.instance_family.lower() not in ("t3", "m5", "c5"):
            raise ValueError(
                f"unsupported instance family {self.instance_family!r} "
                "(use t3, m5 or c5)"
            )
        if self.knob < 0:
            raise ValueError("the knob (epsilon) must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.min_ram_gb <= 0:
            raise ValueError("min_ram_gb must be positive")
        if self.error_difference_trigger <= 0:
            raise ValueError("error_difference_trigger must be positive")
        if self.history_window is not None and self.history_window < 1:
            raise ValueError("history_window must be at least 1 (or None)")

    # ------------------------------------------------------------------
    # Property-file style round trip
    # ------------------------------------------------------------------

    @classmethod
    def from_properties(cls, properties: Mapping[str, Any]) -> "SmartpickProperties":
        """Build from dotted Spark-style property keys.

        Unknown ``smartpick.*`` keys raise; foreign keys (``spark.*``) are
        ignored so a full Spark configuration can be passed through.
        """
        kwargs: dict[str, Any] = {}
        for key, value in properties.items():
            if not key.startswith("smartpick."):
                continue
            field = _KEY_TO_FIELD.get(key)
            if field is None:
                raise ValueError(f"unknown Smartpick property {key!r}")
            kwargs[field] = value
        if "relay" in kwargs:
            kwargs["relay"] = _parse_bool(kwargs["relay"])
        if "prefer_same_instance" in kwargs:
            kwargs["prefer_same_instance"] = _parse_bool(
                kwargs["prefer_same_instance"]
            )
        for numeric in ("knob", "min_ram_gb", "error_difference_trigger"):
            if numeric in kwargs:
                kwargs[numeric] = float(kwargs[numeric])
        if "max_batch" in kwargs:
            kwargs["max_batch"] = int(kwargs["max_batch"])
        if "history_window" in kwargs:
            raw = kwargs["history_window"]
            if raw is None or str(raw).strip().lower() in ("", "none"):
                kwargs["history_window"] = None
            else:
                kwargs["history_window"] = int(raw)
        return cls(**kwargs)

    def to_properties(self) -> dict[str, str]:
        """Render back to dotted property keys (all values stringified)."""
        out: dict[str, str] = {}
        for field, key in _FIELD_TO_KEY.items():
            value = getattr(self, field)
            out[key] = str(value)
        return out

    def with_knob(self, knob: float) -> "SmartpickProperties":
        """Copy with a different tradeoff epsilon."""
        return dataclasses.replace(self, knob=knob)

    def with_relay(self, relay: bool) -> "SmartpickProperties":
        """Copy with relay toggled."""
        return dataclasses.replace(self, relay=relay)
