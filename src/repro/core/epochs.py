"""Epoch-level workload planning: forecast the fleet, not the gap.

:class:`~repro.core.forecast.ArrivalForecaster` predicts the *next*
inter-arrival gap, so the pool learns about a diurnal burst only after it
has queued.  Production systems plan capacity per **epoch** instead --
BRAD's ``Workload`` representation (per-epoch query arrival counts,
explicitly designed to be forecasted) and Kassing et al.'s
resource-allocation framing both argue for planning the fleet ahead of
the burst.  This module closes that loop:

- :class:`WorkloadEpoch` summarises one completed serving window:
  per-(tenant, query-class) arrival counts, input-size octaves, the
  observed VM/SL worker mix and per-shard routing counts.  Summaries
  merge associatively, so windows can be coarsened or combined freely.
- :class:`EpochForecaster` predicts the next epoch from a ring of past
  ones: a seasonal-naive term (the epoch one season ago -- yesterday's
  same hour) blended with a per-key EWMA (the recent level), per class
  key and per shard.
- :class:`FleetPlanner` turns the forecast into a :class:`PoolPlan` --
  per-shard capacity targets and pre-warm counts sized by the predicted
  burst against the cold-boot **break-even bound**
  (:func:`repro.core.forecast.break_even_s`): pre-booting a worker ahead
  of a burst pays off exactly when its expected idle wait before the
  first hand-over stays under the bound.
- :class:`ClusterPool.apply_plan` applies the plan at epoch boundaries:
  grow/shrink shard capacity without ever killing leased workers,
  pre-boots billed to the keep-alive ledger.
- :class:`ForecastAwareRouter` feeds the per-shard forecast back into
  routing, co-locating arrivals with *actual* warmth first and predicted
  warmth second -- a cold shard with a hot forecast attracts the
  pre-warm, not the traffic.

The serving loop (``ServingSimulator(planner=...)``) drives the cycle:
arrivals feed the current epoch; at each boundary the epoch is closed
into the forecaster, the next epoch is forecast, and the resulting plan
is applied -- identically on the event and columnar engines.
"""

from __future__ import annotations

import collections
import dataclasses
import math
from typing import Mapping

from repro.cloud.instances import InstanceKind
from repro.cloud.pool import (
    AutoscalerPolicy,
    ClusterPool,
    FixedKeepAlive,
    GrantPolicy,
    PoolShard,
    ShardRouter,
)
from repro.core.forecast import break_even_s

__all__ = [
    "EpochForecast",
    "EpochForecaster",
    "FleetPlanner",
    "ForecastAwareRouter",
    "PoolPlan",
    "WorkloadEpoch",
]

#: Cap on distinct (tenant, class) keys a forecaster tracks; overflow
#: evicts the key with the smallest smoothed count (the least able to
#: ever matter to a plan again).
_MAX_FORECAST_KEYS = 1024

#: Smoothed counts below this are dropped outright -- a key whose EWMA
#: decayed this far contributes nothing to any plan.
_PRUNE_EPSILON = 1e-6


def _input_octave(input_gb: float) -> int:
    """The log2 input-size bucket (matches the predictor's class key)."""
    if input_gb <= 0.0:
        return 0
    return int(math.floor(math.log2(input_gb)))


class WorkloadEpoch:
    """Arrival summary of one serving window (the BRAD ``Workload`` shape).

    Counters only -- no per-arrival state -- so a million-arrival epoch
    costs the same to keep as a ten-arrival one, and summaries
    :meth:`merge` associatively into coarser windows.
    """

    __slots__ = (
        "start_s", "duration_s", "n_arrivals", "counts", "octaves",
        "shard_counts", "vm_workers", "sl_workers",
    )

    def __init__(self, start_s: float = 0.0, duration_s: float = 0.0) -> None:
        if duration_s < 0.0:
            raise ValueError("duration_s must be non-negative")
        self.start_s = start_s
        self.duration_s = duration_s
        self.n_arrivals = 0
        #: (tenant, class_key) -> arrivals this epoch.
        self.counts: dict[tuple[str, object], int] = {}
        #: log2 input-size bucket -> arrivals this epoch.
        self.octaves: dict[int, int] = {}
        #: shard name -> arrivals routed there this epoch.
        self.shard_counts: dict[str, int] = {}
        #: Total workers granted to this epoch's arrivals (observed mix).
        self.vm_workers = 0
        self.sl_workers = 0

    def observe(
        self,
        tenant: str,
        class_key: object,
        input_gb: float = 0.0,
        shard: str | None = None,
        n_vm: int = 0,
        n_sl: int = 0,
    ) -> None:
        """Record one served arrival and its granted worker mix."""
        self.n_arrivals += 1
        key = (tenant, class_key)
        self.counts[key] = self.counts.get(key, 0) + 1
        octave = _input_octave(input_gb)
        self.octaves[octave] = self.octaves.get(octave, 0) + 1
        if shard is not None:
            self.shard_counts[shard] = self.shard_counts.get(shard, 0) + 1
        self.vm_workers += n_vm
        self.sl_workers += n_sl

    def merge(self, other: "WorkloadEpoch") -> "WorkloadEpoch":
        """The combined summary of two windows (associative, commutative
        up to ``start_s`` ordering)."""
        merged = WorkloadEpoch(
            start_s=min(self.start_s, other.start_s),
            duration_s=self.duration_s + other.duration_s,
        )
        merged.n_arrivals = self.n_arrivals + other.n_arrivals
        merged.vm_workers = self.vm_workers + other.vm_workers
        merged.sl_workers = self.sl_workers + other.sl_workers
        for ours, theirs, target in (
            (self.counts, other.counts, merged.counts),
            (self.octaves, other.octaves, merged.octaves),
            (self.shard_counts, other.shard_counts, merged.shard_counts),
        ):
            target.update(ours)
            for key, value in theirs.items():
                target[key] = target.get(key, 0) + value
        return merged

    @property
    def arrival_rate(self) -> float:
        """Arrivals per second over the window (0 for an empty window)."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.n_arrivals / self.duration_s

    def describe(self) -> str:
        return (
            f"epoch(start={self.start_s:g}s, dur={self.duration_s:g}s, "
            f"n={self.n_arrivals}, classes={len(self.counts)}, "
            f"mix={self.vm_workers}VM+{self.sl_workers}SL)"
        )


@dataclasses.dataclass(frozen=True)
class EpochForecast:
    """The forecaster's prediction for the next epoch (float counts)."""

    #: Total predicted arrivals.
    arrivals: float
    #: Predicted arrivals per (tenant, class_key).
    by_class: Mapping[tuple[str, object], float]
    #: Predicted arrivals per shard.
    by_shard: Mapping[str, float]
    #: Smoothed granted workers per arrival (None before any data).
    vm_per_arrival: float | None
    sl_per_arrival: float | None


class EpochForecaster:
    """Seasonal-naive + EWMA blend over a ring of past epochs.

    Per key (class or shard) the prediction is::

        seasonal_weight * count[one season ago] + (1 - w) * EWMA(counts)

    The seasonal term captures diurnal structure (the same epoch
    yesterday); the EWMA captures the recent level.  Before a full
    season of history the prediction is the EWMA alone.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor (newest epoch's weight).
    season_length:
        Epochs per season (e.g. 24 for hourly epochs with a daily
        cycle); ``0`` disables the seasonal term.
    seasonal_weight:
        Blend weight of the seasonal-naive term once a full season of
        history exists.
    history:
        Ring size of retained epochs (floored at one season).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        season_length: int = 0,
        seasonal_weight: float = 0.5,
        history: int = 32,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if season_length < 0:
            raise ValueError("season_length must be non-negative")
        if not 0.0 <= seasonal_weight <= 1.0:
            raise ValueError("seasonal_weight must be in [0, 1]")
        if history < 1:
            raise ValueError("history must be at least 1")
        self.alpha = alpha
        self.season_length = season_length
        self.seasonal_weight = seasonal_weight
        self.history = history
        self._ring: collections.deque[WorkloadEpoch] = collections.deque(
            maxlen=max(history, season_length or 1)
        )
        self._class_ewma: dict[tuple[str, object], float] = {}
        self._shard_ewma: dict[str, float] = {}
        self._arrivals_ewma: float | None = None
        self._vm_mix_ewma: float | None = None
        self._sl_mix_ewma: float | None = None
        self.n_observed = 0

    def fresh(self) -> "EpochForecaster":
        """A new forecaster with the same configuration, no state."""
        return EpochForecaster(
            alpha=self.alpha,
            season_length=self.season_length,
            seasonal_weight=self.seasonal_weight,
            history=self.history,
        )

    def observe(self, epoch: WorkloadEpoch) -> None:
        """Fold one completed epoch into the smoothed state and the ring."""
        self.n_observed += 1
        self._ring.append(epoch)
        for ewma, counts in (
            (self._class_ewma, epoch.counts),
            (self._shard_ewma, epoch.shard_counts),
        ):
            for key in list(ewma):
                if key not in counts:
                    decayed = (1.0 - self.alpha) * ewma[key]
                    if decayed < _PRUNE_EPSILON:
                        del ewma[key]
                    else:
                        ewma[key] = decayed
            for key, count in counts.items():
                previous = ewma.get(key)
                if previous is None:
                    if len(ewma) >= _MAX_FORECAST_KEYS:
                        del ewma[min(ewma, key=ewma.get)]
                    ewma[key] = float(count)
                else:
                    ewma[key] = (
                        self.alpha * count + (1.0 - self.alpha) * previous
                    )
        if self._arrivals_ewma is None:
            self._arrivals_ewma = float(epoch.n_arrivals)
        else:
            self._arrivals_ewma = (
                self.alpha * epoch.n_arrivals
                + (1.0 - self.alpha) * self._arrivals_ewma
            )
        if epoch.n_arrivals > 0:
            vm_mix = epoch.vm_workers / epoch.n_arrivals
            sl_mix = epoch.sl_workers / epoch.n_arrivals
            if self._vm_mix_ewma is None:
                self._vm_mix_ewma = vm_mix
                self._sl_mix_ewma = sl_mix
            else:
                self._vm_mix_ewma += self.alpha * (vm_mix - self._vm_mix_ewma)
                self._sl_mix_ewma += self.alpha * (sl_mix - self._sl_mix_ewma)

    def _seasonal(self) -> WorkloadEpoch | None:
        if self.season_length and len(self._ring) >= self.season_length:
            return self._ring[-self.season_length]
        return None

    def forecast(self) -> EpochForecast | None:
        """The next epoch's prediction, or ``None`` before any epoch."""
        if self.n_observed == 0:
            return None
        seasonal = self._seasonal()
        weight = self.seasonal_weight if seasonal is not None else 0.0

        def blend(
            ewma: dict, seasonal_counts: Mapping
        ) -> dict:
            keys = set(ewma)
            keys.update(seasonal_counts)
            out = {}
            for key in keys:
                value = (
                    weight * seasonal_counts.get(key, 0)
                    + (1.0 - weight) * ewma.get(key, 0.0)
                )
                if value >= _PRUNE_EPSILON:
                    out[key] = value
            return out

        seasonal_classes = seasonal.counts if seasonal is not None else {}
        seasonal_shards = (
            seasonal.shard_counts if seasonal is not None else {}
        )
        seasonal_total = seasonal.n_arrivals if seasonal is not None else 0
        arrivals = (
            weight * seasonal_total
            + (1.0 - weight) * (self._arrivals_ewma or 0.0)
        )
        return EpochForecast(
            arrivals=arrivals,
            by_class=blend(self._class_ewma, seasonal_classes),
            by_shard=blend(self._shard_ewma, seasonal_shards),
            vm_per_arrival=self._vm_mix_ewma,
            sl_per_arrival=self._sl_mix_ewma,
        )

    def describe(self) -> str:
        seasonal = (
            f", season={self.season_length}x{self.seasonal_weight:g}"
            if self.season_length
            else ""
        )
        return f"epoch-forecaster(alpha={self.alpha:g}{seasonal})"


def _empty_mapping() -> dict:
    return {}


@dataclasses.dataclass(frozen=True)
class PoolPlan:
    """One epoch's topology decision, applied by
    :meth:`~repro.cloud.pool.ClusterPool.apply_plan`.

    Attributes
    ----------
    shard_capacity:
        shard name -> ``(max_vms, max_sls)`` target.  Clamped by the
        pool so leased workers are never killed and supported worker
        kinds stay servable (see ``apply_plan``).
    prewarm:
        shard name -> ``(n_vm, n_sl)`` workers to pre-boot into the warm
        set, clamped to the shard's free headroom.
    prewarm_keep_alive_s:
        Park window granted to each pre-boot once warm.
    grant_policy:
        Optional pool-wide grant-ordering override.
    shard_autoscalers:
        Optional per-shard keep-alive policy overrides.
    """

    shard_capacity: Mapping[str, tuple[int, int]] = dataclasses.field(
        default_factory=_empty_mapping
    )
    prewarm: Mapping[str, tuple[int, int]] = dataclasses.field(
        default_factory=_empty_mapping
    )
    prewarm_keep_alive_s: float = 300.0
    grant_policy: GrantPolicy | None = None
    shard_autoscalers: Mapping[str, AutoscalerPolicy] | None = None

    @property
    def is_empty(self) -> bool:
        return (
            not self.shard_capacity
            and not self.prewarm
            and self.grant_policy is None
            and not self.shard_autoscalers
        )


class FleetPlanner:
    """Forecast-sized proactive provisioning, one decision per epoch.

    The planner accumulates the current epoch's arrivals, and at each
    boundary (driven by the serving loop) closes it into its
    :class:`EpochForecaster` and emits a :class:`PoolPlan`:

    - **Pre-warming.**  For each shard the predicted per-shard arrival
      stream implies an expected inter-arrival gap ``epoch_s /
      arrivals``.  A worker kind is pre-booted only when that gap beats
      its break-even bound (:func:`repro.core.forecast.break_even_s`) --
      the exact condition under which a speculative boot's idle wait
      costs less than the warm-start saving it buys.  The count is the
      predicted concurrent worker demand (``arrivals * duration /
      epoch_s`` times the observed per-arrival mix, with ``headroom``),
      less workers already warm, capped per epoch.
    - **Capacity targets.**  With ``capacity_limits`` set, shard
      capacity grows toward the predicted concurrent demand (never above
      the limit, never below the shard's baseline) and shrinks back to
      baseline as demand fades.  Without limits, capacity is left alone.
    - **Keep-alive windows.**  With ``keep_alive_margin`` set, each plan
      also prices the park window from the forecast: a released worker
      is kept warm for ``margin`` predicted inter-arrival gaps (capped
      at ``max_keep_alive_s``), so the pool parks just long enough to
      bridge the expected gap instead of a fixed window -- long parks in
      quiet epochs where gaps are wide, short parks right after a burst
      where the fleet would otherwise idle on a stale window.

    A planner with ``max_prewarm_vms=0, max_prewarm_sls=0`` and no
    capacity limits emits only empty plans -- serving with such a
    planner is bit-exact with no planner at all (hypothesis-pinned).
    """

    def __init__(
        self,
        epoch_s: float = 300.0,
        forecaster: EpochForecaster | None = None,
        headroom: float = 1.5,
        max_prewarm_vms: int = 4,
        max_prewarm_sls: int = 8,
        prewarm_keep_alive_s: float | None = None,
        capacity_limits: Mapping[str, tuple[int, int]] | None = None,
        grant_policy: GrantPolicy | None = None,
        duration_alpha: float = 0.3,
        keep_alive_margin: float | None = None,
        max_keep_alive_s: float = 600.0,
    ) -> None:
        if epoch_s <= 0.0:
            raise ValueError("epoch_s must be positive")
        if headroom <= 0.0:
            raise ValueError("headroom must be positive")
        if max_prewarm_vms < 0 or max_prewarm_sls < 0:
            raise ValueError("pre-warm caps must be non-negative")
        if prewarm_keep_alive_s is not None and prewarm_keep_alive_s <= 0.0:
            raise ValueError("prewarm_keep_alive_s must be positive")
        if not 0.0 < duration_alpha <= 1.0:
            raise ValueError("duration_alpha must be in (0, 1]")
        if keep_alive_margin is not None and keep_alive_margin <= 0.0:
            raise ValueError("keep_alive_margin must be positive")
        if max_keep_alive_s <= 0.0:
            raise ValueError("max_keep_alive_s must be positive")
        self.epoch_s = epoch_s
        self.forecaster = forecaster or EpochForecaster()
        self.headroom = headroom
        self.max_prewarm_vms = max_prewarm_vms
        self.max_prewarm_sls = max_prewarm_sls
        self.prewarm_keep_alive_s = prewarm_keep_alive_s
        self.capacity_limits = dict(capacity_limits or {})
        self.grant_policy = grant_policy
        self.duration_alpha = duration_alpha
        self.keep_alive_margin = keep_alive_margin
        self.max_keep_alive_s = max_keep_alive_s
        self._epoch: WorkloadEpoch | None = None
        self._duration_ewma: float | None = None
        self._baselines: dict[str, tuple[int, int]] = {}
        self._last_forecast: EpochForecast | None = None
        self.epochs_closed = 0

    def fresh(self) -> "FleetPlanner":
        """A new planner with the same configuration, no learned state.

        The serving layer calls this at the start of every replay so a
        planner instance embedded in a scenario (or reused across
        replays) cannot leak one replay's observations into the next --
        replays stay deterministic and repeatable.
        """
        return FleetPlanner(
            epoch_s=self.epoch_s,
            forecaster=self.forecaster.fresh(),
            headroom=self.headroom,
            max_prewarm_vms=self.max_prewarm_vms,
            max_prewarm_sls=self.max_prewarm_sls,
            prewarm_keep_alive_s=self.prewarm_keep_alive_s,
            capacity_limits=self.capacity_limits,
            grant_policy=self.grant_policy,
            duration_alpha=self.duration_alpha,
            keep_alive_margin=self.keep_alive_margin,
            max_keep_alive_s=self.max_keep_alive_s,
        )

    # ------------------------------------------------------------------
    # Observation (the serving layer feeds this)
    # ------------------------------------------------------------------

    def begin(self, now: float) -> None:
        """Open the first epoch at the replay's start time."""
        self._epoch = WorkloadEpoch(start_s=now, duration_s=self.epoch_s)

    def observe_arrival(
        self,
        tenant: str,
        class_key: object,
        input_gb: float = 0.0,
        shard: str | None = None,
        n_vm: int = 0,
        n_sl: int = 0,
    ) -> None:
        """Record one served arrival into the current epoch."""
        if self._epoch is None:
            self._epoch = WorkloadEpoch(duration_s=self.epoch_s)
        self._epoch.observe(
            tenant, class_key, input_gb, shard=shard, n_vm=n_vm, n_sl=n_sl
        )

    def observe_duration(self, seconds: float) -> None:
        """Feed one completed query's duration (sizes concurrent demand)."""
        seconds = float(seconds)
        if seconds <= 0.0:
            return
        if self._duration_ewma is None:
            self._duration_ewma = seconds
        else:
            self._duration_ewma += self.duration_alpha * (
                seconds - self._duration_ewma
            )

    # ------------------------------------------------------------------
    # Planning (the serving loop drives this at epoch boundaries)
    # ------------------------------------------------------------------

    def on_epoch_end(self, pool: ClusterPool, now: float) -> PoolPlan:
        """Close the current epoch, forecast the next, emit its plan."""
        epoch = self._epoch or WorkloadEpoch(duration_s=self.epoch_s)
        epoch.duration_s = max(now - epoch.start_s, 0.0) or self.epoch_s
        self._epoch = WorkloadEpoch(start_s=now, duration_s=self.epoch_s)
        self.forecaster.observe(epoch)
        self.epochs_closed += 1
        return self.plan(pool)

    def shard_forecast(self, name: str) -> float:
        """Predicted arrivals on one shard next epoch (0 before data)."""
        if self._last_forecast is None:
            return 0.0
        return self._last_forecast.by_shard.get(name, 0.0)

    def plan(self, pool: ClusterPool) -> PoolPlan:
        """The next epoch's :class:`PoolPlan` from the current forecast."""
        forecast = self.forecaster.forecast()
        self._last_forecast = forecast
        for shard in pool.shards:
            self._baselines.setdefault(
                shard.name, (shard.config.max_vms, shard.config.max_sls)
            )
        if forecast is None or forecast.arrivals <= 0.0:
            # Nothing predicted: no pre-warming, capacity back to baseline.
            capacity = {
                name: self._baselines[name] for name in self.capacity_limits
                if name in self._baselines
                and self._baselines[name] != (
                    pool.shard(name).config.max_vms,
                    pool.shard(name).config.max_sls,
                )
            }
            return PoolPlan(
                shard_capacity=capacity, grant_policy=self.grant_policy
            )
        prewarm: dict[str, tuple[int, int]] = {}
        capacity: dict[str, tuple[int, int]] = {}
        autoscalers: dict[str, AutoscalerPolicy] = {}
        for shard in pool.shards:
            predicted = forecast.by_shard.get(shard.name, 0.0)
            wants = self._shard_demand(forecast, predicted)
            n_vm, n_sl = self._prewarm_counts(pool, shard, predicted, wants)
            if n_vm or n_sl:
                prewarm[shard.name] = (n_vm, n_sl)
            target = self._capacity_target(shard, wants)
            if target is not None:
                capacity[shard.name] = target
            window = self._keep_alive_window(predicted)
            if window is not None:
                autoscalers[shard.name] = FixedKeepAlive(window, window / 4.0)
        return PoolPlan(
            shard_capacity=capacity,
            prewarm=prewarm,
            prewarm_keep_alive_s=(
                self.prewarm_keep_alive_s
                if self.prewarm_keep_alive_s is not None
                else self.epoch_s
            ),
            grant_policy=self.grant_policy,
            shard_autoscalers=autoscalers or None,
        )

    def _shard_demand(
        self, forecast: EpochForecast, predicted: float
    ) -> tuple[float, float]:
        """Expected concurrent (vm, sl) worker demand on one shard."""
        if predicted <= 0.0:
            return (0.0, 0.0)
        vm_mix = forecast.vm_per_arrival
        sl_mix = forecast.sl_per_arrival
        if vm_mix is None or sl_mix is None:
            return (0.0, 0.0)  # no mix observed yet: nothing to size
        if self._duration_ewma is not None:
            concurrency = min(
                predicted * self._duration_ewma / self.epoch_s, predicted
            )
            concurrency = max(concurrency, 1.0)
        else:
            concurrency = 1.0  # no durations yet: one arrival in flight
        return (
            self.headroom * concurrency * vm_mix,
            self.headroom * concurrency * sl_mix,
        )

    def _prewarm_counts(
        self,
        pool: ClusterPool,
        shard: PoolShard,
        predicted: float,
        wants: tuple[float, float],
    ) -> tuple[int, int]:
        if predicted <= 0.0:
            return (0, 0)
        expected_gap = self.epoch_s / predicted
        counts = []
        for kind, want, cap, warm in (
            (InstanceKind.VM, wants[0], self.max_prewarm_vms,
             shard.warm_vms),
            (InstanceKind.SERVERLESS, wants[1], self.max_prewarm_sls,
             shard.warm_sls),
        ):
            if cap <= 0 or expected_gap > break_even_s(kind, pool, shard):
                counts.append(0)
                continue
            counts.append(max(min(math.ceil(want), cap) - warm, 0))
        return (counts[0], counts[1])

    def _keep_alive_window(self, predicted: float) -> float | None:
        """The forecast-priced park window for next epoch (None: no
        override planned)."""
        if self.keep_alive_margin is None or predicted <= 0.0:
            return None
        expected_gap = self.epoch_s / predicted
        return min(self.keep_alive_margin * expected_gap, self.max_keep_alive_s)

    def _capacity_target(
        self, shard: PoolShard, wants: tuple[float, float]
    ) -> tuple[int, int] | None:
        limits = self.capacity_limits.get(shard.name)
        if limits is None:
            return None
        base_vms, base_sls = self._baselines[shard.name]
        target_vms = min(max(math.ceil(wants[0]), base_vms), limits[0])
        target_sls = min(max(math.ceil(wants[1]), base_sls), limits[1])
        if (target_vms, target_sls) == (
            shard.config.max_vms, shard.config.max_sls
        ):
            return None  # already there: keep the plan minimal
        return (target_vms, target_sls)

    def describe(self) -> str:
        scaled = (
            f", capacity<=({', '.join(sorted(self.capacity_limits))})"
            if self.capacity_limits
            else ""
        )
        windows = (
            f", keep-alive={self.keep_alive_margin:g}x gap"
            if self.keep_alive_margin is not None
            else ""
        )
        return (
            f"fleet-planner(epoch={self.epoch_s:g}s, "
            f"prewarm<=({self.max_prewarm_vms}VM, {self.max_prewarm_sls}SL), "
            f"headroom={self.headroom:g}, "
            f"{self.forecaster.describe()}{scaled}{windows})"
        )


class ForecastAwareRouter(ShardRouter):
    """Route arrivals to warmth -- actual first, predicted second.

    Among the shards that can serve the most of the request (the same
    capability filter the other routers apply), candidates are ranked by
    how much of the request they could hand over *warm right now*, then
    by the planner's predicted arrivals for the shard next epoch, then
    by free capacity.  Actual warmth dominates: a cold shard with a hot
    forecast receives the planner's pre-warm, not the traffic -- the
    traffic follows once the pre-boots land in its warm set.  The
    forecast tie-break keeps a sustained stream consolidated on the
    shard the planner is heating instead of spraying it across equally
    cold shards.
    """

    def __init__(self, planner: FleetPlanner) -> None:
        self.planner = planner

    def route(
        self, n_vm: int, n_sl: int, tenant: str, pool: ClusterPool
    ) -> str:
        def coverage(shard: PoolShard) -> int:
            return (
                min(n_vm, shard.config.max_vms)
                + min(n_sl, shard.config.max_sls)
            )

        shards = pool.shards
        best_coverage = max(coverage(shard) for shard in shards)
        best_name: str | None = None
        best_key: tuple[int, float, int] | None = None
        for shard in shards:
            if coverage(shard) != best_coverage:
                continue
            warm_now = (
                min(n_vm, shard.warm_vms) + min(n_sl, shard.warm_sls)
            )
            key = (
                warm_now,
                self.planner.shard_forecast(shard.name),
                shard.free_vms + shard.free_sls,
            )
            if best_key is None or key > best_key:
                best_name, best_key = shard.name, key
        assert best_name is not None  # pools always have >= 1 shard
        return best_name

    def describe(self) -> str:
        return "forecast-aware"
