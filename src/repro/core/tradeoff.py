"""The cost-performance tradeoff knob (Section 3.3, Eq. 4).

With the knob (epsilon) set above zero, Smartpick no longer returns the
best-performance configuration; it traverses the Estimated Time list
(``ET_l``) of candidate solutions the optimizer explored and solves

    max  T_est,          T_est in ET_l
    s.t. nVM * t_vm * C_vm + nSL * t_sl * C_sl <= C_best
         T_est <= T_best * (1 + epsilon)

i.e. it admits up to ``epsilon`` extra latency and, within that budget,
picks the candidate drawing minimum compute cost.  The naive alternative
the paper rejects -- proportionally scaling the optimal configuration down
-- is implemented too (:func:`naive_scale_down`) for the ablation bench.

The Estimated Time list exists in two representations:

- :class:`EstimatedTimeEntry` objects solved by :func:`select_with_knob`
  -- the readable reference implementation, and the form callers see when
  they inspect ``ConfigDecision.et_list``.
- :class:`DecisionGrid` -- the same information as three parallel float64
  arrays, solved by :meth:`DecisionGrid.select_index_with_knob` with one
  boolean-mask pass.  The hot decision path stays array-native end to end
  and entries are only materialised on demand.

Both solvers run the exact same float64 comparisons in an order that
preserves the reference's stable tie-breaking, so they pick the
*bitwise-identical* winner for any grid, knob and tie pattern (the
property suite in ``tests/test_properties.py`` pins this).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "EstimatedTimeEntry",
    "DecisionGrid",
    "select_with_knob",
    "naive_scale_down",
]


@dataclasses.dataclass(frozen=True)
class EstimatedTimeEntry:
    """One candidate solution explored during resource determination.

    ``estimated_seconds`` is the noise-free RF estimate (``T_est``);
    ``estimated_cost`` is the Eq. 4 cost term for this configuration,
    split into its VM and SL usage components by the caller.
    """

    n_vm: int
    n_sl: int
    estimated_seconds: float
    estimated_cost: float

    @property
    def config(self) -> tuple[int, int]:
        return (self.n_vm, self.n_sl)


class DecisionGrid:
    """An Estimated Time list as three parallel arrays.

    ``candidates`` holds the ``(nVM, nSL)`` rows, ``seconds`` the
    noise-free RF estimates and ``costs`` the Eq. 4 cost terms -- exactly
    the values the equivalent ``list[EstimatedTimeEntry]`` would carry,
    kept in array form so resource determination never has to pay the
    per-entry object tax.  Entries materialise lazily via
    :meth:`entries` / :meth:`entry` (``float()`` / ``int()`` of the same
    array elements, so the round trip is exact).

    The arrays are marked read-only: one grid may back many
    ``ConfigDecision`` objects and live in the decision cache.
    """

    __slots__ = ("candidates", "seconds", "costs")

    def __init__(
        self,
        candidates: np.ndarray,
        seconds: np.ndarray,
        costs: np.ndarray,
    ) -> None:
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        seconds = np.asarray(seconds, dtype=np.float64)
        costs = np.asarray(costs, dtype=np.float64)
        if candidates.ndim != 2 or candidates.shape[1] != 2:
            raise ValueError("candidates must be an (n, 2) array")
        if seconds.shape != (candidates.shape[0],):
            raise ValueError("seconds and candidates disagree on entry count")
        if costs.shape != seconds.shape:
            raise ValueError("costs and seconds disagree on entry count")
        for array in (candidates, seconds, costs):
            if array.flags.writeable:
                array.flags.writeable = False
        self.candidates = candidates
        self.seconds = seconds
        self.costs = costs

    def __len__(self) -> int:
        return int(self.seconds.shape[0])

    def entry(self, index: int) -> EstimatedTimeEntry:
        """Materialise one entry (exact values, no rounding)."""
        point = self.candidates[index]
        return EstimatedTimeEntry(
            n_vm=int(point[0]),
            n_sl=int(point[1]),
            estimated_seconds=float(self.seconds[index]),
            estimated_cost=float(self.costs[index]),
        )

    def entries(self) -> list[EstimatedTimeEntry]:
        """The full Estimated Time list, materialised on demand."""
        return [
            EstimatedTimeEntry(
                n_vm=int(point[0]),
                n_sl=int(point[1]),
                estimated_seconds=float(t_est),
                estimated_cost=float(cost),
            )
            for point, t_est, cost in zip(self.candidates, self.seconds, self.costs)
        ]

    def best_index(self) -> int:
        """Index of the best-performance entry (``T_best``).

        First index of the minimum estimated time -- identical to
        ``min(entries, key=lambda e: e.estimated_seconds)``, which also
        keeps the first among exact ties.
        """
        if len(self) == 0:
            raise ValueError("the grid is empty")
        return int(np.argmin(self.seconds))

    def select_index_with_knob(
        self,
        best_seconds: float,
        best_cost: float,
        epsilon: float,
    ) -> int | None:
        """Vectorised Eq. 4 over the grid; ``None`` keeps ``best``.

        Solves the same problem as :func:`select_with_knob` against a
        ``best`` entry described by ``(best_seconds, best_cost)`` (which
        need not be a grid row -- the BO path appends its winner
        separately).  Returns the index of the admissible minimum-cost /
        maximum-time entry, or ``None`` when no admissible candidate
        exists or ``epsilon`` is zero, in which case the caller keeps
        ``best`` -- exactly the reference's fallback.

        The comparisons (``<=`` against the same float64 budget and cost
        bound) and the tie-breaking (first index among entries tied on
        both cost and time, via first-``True`` ``argmax``) replicate the
        reference's stable ``min`` bit for bit.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if epsilon == 0 or len(self) == 0:
            return None
        latency_budget = best_seconds * (1.0 + epsilon)
        admissible = (self.seconds <= latency_budget) & (self.costs <= best_cost)
        if not admissible.any():
            return None
        min_cost = self.costs[admissible].min()
        cheapest = admissible & (self.costs == min_cost)
        max_seconds = self.seconds[cheapest].max()
        return int(np.argmax(cheapest & (self.seconds == max_seconds)))

    def select_index_within_budget(self, budget_s: float) -> int | None:
        """Cheapest entry meeting an absolute latency budget (SLO sizing).

        The SLO-tier variant of Eq. 4: instead of a *relative* tolerance
        around ``T_best``, the constraint is an absolute deadline budget
        (e.g. a tenant's ``slo_latency_s``).  Returns the index of the
        minimum-cost entry whose estimated time fits the budget -- ties
        break toward the larger estimated time, matching
        :meth:`select_index_with_knob` -- or ``None`` when no entry fits
        (the caller should fall back to the fastest configuration).
        """
        if budget_s <= 0.0:
            raise ValueError("budget_s must be positive")
        if len(self) == 0:
            return None
        admissible = self.seconds <= budget_s
        if not admissible.any():
            return None
        min_cost = self.costs[admissible].min()
        cheapest = admissible & (self.costs == min_cost)
        max_seconds = self.seconds[cheapest].max()
        return int(np.argmax(cheapest & (self.seconds == max_seconds)))


def select_with_knob(
    et_list: list[EstimatedTimeEntry],
    best: EstimatedTimeEntry,
    epsilon: float,
) -> EstimatedTimeEntry:
    """Solve Eq. 4 over the Estimated Time list.

    Parameters
    ----------
    et_list:
        Candidate solutions explored for the final optimum (``ET_l``).
    best:
        The optimal entry (``T_best`` / ``C_best``).
    epsilon:
        The tolerance knob; 0 returns ``best`` unchanged.

    Returns
    -------
    The admissible entry with the lowest estimated cost; ties break toward
    the *larger* estimated time (the objective maximises ``T_est``).  The
    paper notes the cost reduction "is not always guaranteed" -- when no
    cheaper admissible candidate exists, ``best`` itself is returned.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if epsilon == 0:
        return best

    latency_budget = best.estimated_seconds * (1.0 + epsilon)
    admissible = [
        entry
        for entry in et_list
        if entry.estimated_seconds <= latency_budget
        and entry.estimated_cost <= best.estimated_cost
    ]
    if not admissible:
        return best
    # Minimum cost first; among equal costs prefer the higher T_est,
    # matching the maximise-T_est objective under the cost constraint.
    return min(
        admissible,
        key=lambda entry: (entry.estimated_cost, -entry.estimated_seconds),
    )


def naive_scale_down(
    best: EstimatedTimeEntry,
    epsilon: float,
) -> tuple[int, int]:
    """The rejected baseline: proportionally shrink the optimal config.

    "Setting the epsilon value to 0.5 halves the numbers of SL and VM
    instances from the optimal configurations" (Section 3.3).  Kept for the
    knob ablation, which shows why Eq. 4's targeted search is smoother.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    scale = max(1.0 - epsilon, 0.0)
    n_vm = int(round(best.n_vm * scale))
    n_sl = int(round(best.n_sl * scale))
    if n_vm + n_sl == 0:
        # Never scale to an empty cluster; keep one worker of the majority
        # kind from the optimal configuration.
        if best.n_vm >= best.n_sl:
            n_vm = 1
        else:
            n_sl = 1
    return n_vm, n_sl
