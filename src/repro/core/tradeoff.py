"""The cost-performance tradeoff knob (Section 3.3, Eq. 4).

With the knob (epsilon) set above zero, Smartpick no longer returns the
best-performance configuration; it traverses the Estimated Time list
(``ET_l``) of candidate solutions the optimizer explored and solves

    max  T_est,          T_est in ET_l
    s.t. nVM * t_vm * C_vm + nSL * t_sl * C_sl <= C_best
         T_est <= T_best * (1 + epsilon)

i.e. it admits up to ``epsilon`` extra latency and, within that budget,
picks the candidate drawing minimum compute cost.  The naive alternative
the paper rejects -- proportionally scaling the optimal configuration down
-- is implemented too (:func:`naive_scale_down`) for the ablation bench.
"""

from __future__ import annotations

import dataclasses

__all__ = ["EstimatedTimeEntry", "select_with_knob", "naive_scale_down"]


@dataclasses.dataclass(frozen=True)
class EstimatedTimeEntry:
    """One candidate solution explored during resource determination.

    ``estimated_seconds`` is the noise-free RF estimate (``T_est``);
    ``estimated_cost`` is the Eq. 4 cost term for this configuration,
    split into its VM and SL usage components by the caller.
    """

    n_vm: int
    n_sl: int
    estimated_seconds: float
    estimated_cost: float

    @property
    def config(self) -> tuple[int, int]:
        return (self.n_vm, self.n_sl)


def select_with_knob(
    et_list: list[EstimatedTimeEntry],
    best: EstimatedTimeEntry,
    epsilon: float,
) -> EstimatedTimeEntry:
    """Solve Eq. 4 over the Estimated Time list.

    Parameters
    ----------
    et_list:
        Candidate solutions explored for the final optimum (``ET_l``).
    best:
        The optimal entry (``T_best`` / ``C_best``).
    epsilon:
        The tolerance knob; 0 returns ``best`` unchanged.

    Returns
    -------
    The admissible entry with the lowest estimated cost; ties break toward
    the *larger* estimated time (the objective maximises ``T_est``).  The
    paper notes the cost reduction "is not always guaranteed" -- when no
    cheaper admissible candidate exists, ``best`` itself is returned.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if epsilon == 0:
        return best

    latency_budget = best.estimated_seconds * (1.0 + epsilon)
    admissible = [
        entry
        for entry in et_list
        if entry.estimated_seconds <= latency_budget
        and entry.estimated_cost <= best.estimated_cost
    ]
    if not admissible:
        return best
    # Minimum cost first; among equal costs prefer the higher T_est,
    # matching the maximise-T_est objective under the cost constraint.
    return min(
        admissible,
        key=lambda entry: (entry.estimated_cost, -entry.estimated_seconds),
    )


def naive_scale_down(
    best: EstimatedTimeEntry,
    epsilon: float,
) -> tuple[int, int]:
    """The rejected baseline: proportionally shrink the optimal config.

    "Setting the epsilon value to 0.5 halves the numbers of SL and VM
    instances from the optimal configurations" (Section 3.3).  Kept for the
    knob ablation, which shows why Eq. 4's targeted search is smoother.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    scale = max(1.0 - epsilon, 0.0)
    n_vm = int(round(best.n_vm * scale))
    n_sl = int(round(best.n_sl * scale))
    if n_vm + n_sl == 0:
        # Never scale to an empty cluster; keep one worker of the majority
        # kind from the optimal configuration.
        if best.n_vm >= best.n_sl:
            n_vm = 1
        else:
            n_sl = 1
    return n_vm, n_sl
