"""Smartpick's core: the paper's contribution.

The architecture follows Figure 3 of the paper:

- :mod:`repro.core.config` -- the Smartpick properties of Table 4.
- :mod:`repro.core.features` -- the workload-prediction features of Table 3.
- :mod:`repro.core.history` -- the History Server (HS).
- :mod:`repro.core.monitor` -- Monitor & Feature Extraction (MFE).
- :mod:`repro.core.similarity` -- the Similarity Checker (SC).
- :mod:`repro.core.predictor` -- the Workload Prediction module (WP):
  Random Forest + Bayesian Optimizer.
- :mod:`repro.core.tradeoff` -- the cost-performance knob (Eq. 4).
- :mod:`repro.core.forecast` -- arrival forecasting for resource
  management: per-query-class next-arrival forecasts, the break-even
  predictive keep-alive policy and the adaptive batch-window tuner.
- :mod:`repro.core.retrain` -- event-driven Background Re-training.
- :mod:`repro.core.job` -- the Job Initializer (JI).
- :mod:`repro.core.smartpick` -- the :class:`~repro.core.smartpick.Smartpick`
  facade tying everything together.
- :mod:`repro.core.rpc` -- the standalone prediction service (Thrift-RPC
  substitute) other SEDA systems can call.
"""

from repro.core.config import SmartpickProperties
from repro.core.features import FEATURE_NAMES, FeatureVector
from repro.core.forecast import (
    AdaptiveBatchWindow,
    ArrivalForecaster,
    PredictiveKeepAlive,
)
from repro.core.history import ExecutionRecord, HistoryServer
from repro.core.job import JobInitializer, SubmissionOutcome
from repro.core.monitor import MonitorAndFeatureExtraction
from repro.core.predictor import (
    ConfigDecision,
    EstimatedTimeEntry,
    PredictionRequest,
    WorkloadPredictor,
)
from repro.core.retrain import BackgroundRetrainer, ModelStore, RetrainEvent
from repro.core.serving import ServedQuery, ServingReport, ServingSimulator
from repro.core.similarity import SimilarityChecker
from repro.core.smartpick import Smartpick
from repro.core.tradeoff import DecisionGrid, naive_scale_down, select_with_knob

__all__ = [
    "AdaptiveBatchWindow",
    "ArrivalForecaster",
    "BackgroundRetrainer",
    "ConfigDecision",
    "DecisionGrid",
    "EstimatedTimeEntry",
    "ExecutionRecord",
    "FEATURE_NAMES",
    "FeatureVector",
    "HistoryServer",
    "JobInitializer",
    "ModelStore",
    "MonitorAndFeatureExtraction",
    "PredictionRequest",
    "PredictiveKeepAlive",
    "RetrainEvent",
    "ServedQuery",
    "ServingReport",
    "ServingSimulator",
    "SimilarityChecker",
    "Smartpick",
    "SmartpickProperties",
    "SubmissionOutcome",
    "WorkloadPredictor",
    "naive_scale_down",
    "select_with_knob",
]
