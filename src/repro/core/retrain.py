"""Event-driven background retraining (Sections 4.2 and 5).

When the gap between actual and predicted completion time exceeds the
configured ``errorDifference.trigger``, Smartpick "spawns an asynchronous
model re-training task that re-tunes the prediction models in background".
The retrained model is built (with ``warm_start``) as a pickled object and
atomically swapped in; users choose *where* retraining runs through
``pref.sameInstance`` and ``min.ram.gb``, and an independent batch-based
mode keeps the model incrementally up to date (``max.batch``).

Offline, "background" asynchrony is modelled as an immediate retrain with
the placement decision recorded -- the decision logic (same-instance vs a
fresh instance, memory gating, batch windows) is exactly the paper's.
"""

from __future__ import annotations

import dataclasses
import pickle

from repro.core.config import SmartpickProperties
from repro.core.history import HistoryServer
from repro.core.predictor import WorkloadPredictor

__all__ = ["RetrainEvent", "ModelStore", "BackgroundRetrainer"]


@dataclasses.dataclass(frozen=True)
class RetrainEvent:
    """One background retraining occurrence."""

    trigger_query_id: str
    predicted_s: float
    actual_s: float
    error_s: float
    same_instance: bool
    model_version: int
    training_samples: int
    incremental: bool


@dataclasses.dataclass(frozen=True)
class ModelSnapshot:
    """A versioned, pickled model -- the prototype's model directory entry."""

    version: int
    payload: bytes
    training_samples: int

    def restore(self):
        """Unpickle the stored forest."""
        return pickle.loads(self.payload)


class ModelStore:
    """Versioned model registry with atomic current-pointer swaps.

    The prototype writes the new model as a pickle object and, on
    completion, "replaces this model in the referred directory" so all new
    predictions point at it.  Here the directory is an in-memory dict, but
    the same swap discipline applies: snapshots are immutable, and
    ``current`` moves only after the new snapshot is fully stored.
    """

    def __init__(self) -> None:
        self._snapshots: dict[int, ModelSnapshot] = {}
        self._current_version: int | None = None

    def publish(self, predictor: WorkloadPredictor) -> ModelSnapshot:
        """Snapshot the predictor's forest and make it current."""
        snapshot = ModelSnapshot(
            version=predictor.model_version,
            payload=pickle.dumps(predictor.forest),
            training_samples=predictor.training_set_size,
        )
        self._snapshots[snapshot.version] = snapshot
        self._current_version = snapshot.version
        return snapshot

    @property
    def current(self) -> ModelSnapshot | None:
        if self._current_version is None:
            return None
        return self._snapshots[self._current_version]

    def get(self, version: int) -> ModelSnapshot:
        return self._snapshots[version]

    @property
    def versions(self) -> tuple[int, ...]:
        return tuple(sorted(self._snapshots))


class BackgroundRetrainer:
    """Decides when and where to retrain, and performs the retrain."""

    def __init__(
        self,
        predictor: WorkloadPredictor,
        history: HistoryServer,
        properties: SmartpickProperties,
        model_store: ModelStore | None = None,
        available_ram_gb: float = 8.0,
    ) -> None:
        self.predictor = predictor
        self.history = history
        self.properties = properties
        self.model_store = model_store or ModelStore()
        self.available_ram_gb = available_ram_gb
        self.events: list[RetrainEvent] = []
        self._records_at_last_batch = 0

    # ------------------------------------------------------------------
    # Placement (pref.sameInstance / min.ram.gb)
    # ------------------------------------------------------------------

    def _retrain_placement(self) -> bool:
        """``True`` = same instance, ``False`` = spawn a fresh instance."""
        return (
            self.properties.prefer_same_instance
            and self.available_ram_gb >= self.properties.min_ram_gb
        )

    # ------------------------------------------------------------------
    # Event-driven retraining
    # ------------------------------------------------------------------

    def observe(
        self, query_id: str, predicted_s: float, actual_s: float
    ) -> RetrainEvent | None:
        """Check the error trigger; retrain if it fires.

        Returns the :class:`RetrainEvent` when retraining happened, else
        ``None``.  The retrain consumes the *entire* history (the new
        workload's records included), so the model absorbs the dynamics
        that caused the miss -- new queries and changed data sizes alike.
        """
        error = abs(actual_s - predicted_s)
        if error <= self.properties.error_difference_trigger:
            return None
        return self._retrain(
            trigger_query_id=query_id,
            predicted_s=predicted_s,
            actual_s=actual_s,
            error_s=error,
            incremental=False,
        )

    def _retrain(
        self,
        trigger_query_id: str,
        predicted_s: float,
        actual_s: float,
        error_s: float,
        incremental: bool,
    ) -> RetrainEvent:
        dataset = self.history.as_dataset()
        query_ids = self.history.known_query_ids()
        if incremental:
            recent = self.history.recent_records(self.properties.max_batch)
            wanted = tuple({record.query_id for record in recent})
            dataset = self.history.as_dataset(wanted)
            self.predictor.warm_update(dataset)
            self.predictor.known_queries.update(wanted)
        else:
            self.predictor.fit(dataset, query_ids=query_ids, augment=True)
        self.model_store.publish(self.predictor)
        event = RetrainEvent(
            trigger_query_id=trigger_query_id,
            predicted_s=predicted_s,
            actual_s=actual_s,
            error_s=error_s,
            same_instance=self._retrain_placement(),
            model_version=self.predictor.model_version,
            training_samples=self.predictor.training_set_size,
            incremental=incremental,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Batch-based incremental retraining (max.batch)
    # ------------------------------------------------------------------

    def batch_tick(self) -> RetrainEvent | None:
        """Fire an incremental warm-start retrain per ``max.batch`` records.

        "Smartpick also supports batch-based re-training that works
        independently to keep the model incrementally up-to-date"
        (Section 5).  Call this after recording executions; it retrains
        once ``max.batch`` new records have accumulated.
        """
        new_records = len(self.history) - self._records_at_last_batch
        if new_records < self.properties.max_batch:
            return None
        self._records_at_last_batch = len(self.history)
        return self._retrain(
            trigger_query_id="<batch>",
            predicted_s=0.0,
            actual_s=0.0,
            error_s=0.0,
            incremental=True,
        )
