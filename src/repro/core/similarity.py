"""The Similarity Checker (SC).

"Smartpick maintains the known queries' identifiers and their attributes,
such as the number of tables, columns, subqueries, and map tasks.  When
queries are sent, Smartpick extracts these attributes from the incoming
queries and computes the spatial cosine similarity to search for the
closest known-query identifier." (Section 4.2)

Attributes are extracted with :mod:`repro.sqlmeta` (the ``sql-metadata``
substitute).  Because map-task counts are two orders of magnitude larger
than table counts, each dimension is normalised by its maximum over the
known queries before the cosine is taken -- otherwise the map-task axis
would dominate every comparison.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sqlmeta import extract_metadata

__all__ = ["QueryAttributes", "SimilarityChecker", "SimilarityMatch"]


@dataclasses.dataclass(frozen=True)
class QueryAttributes:
    """The SC's 4-dimensional attribute list for one query."""

    n_tables: int
    n_columns: int
    n_subqueries: int
    n_map_tasks: int

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.n_tables, self.n_columns, self.n_subqueries, self.n_map_tasks],
            dtype=np.float64,
        )

    @classmethod
    def from_sql(cls, sql: str, n_map_tasks: int) -> "QueryAttributes":
        """Parse ``sql`` and attach the map-task count."""
        metadata = extract_metadata(sql)
        return cls(
            n_tables=metadata.n_tables,
            n_columns=metadata.n_columns,
            n_subqueries=metadata.n_subqueries,
            n_map_tasks=n_map_tasks,
        )


@dataclasses.dataclass(frozen=True)
class SimilarityMatch:
    """Result of a closest-known-query search."""

    query_id: str
    similarity: float
    scores: dict[str, float]


class SimilarityChecker:
    """Finds the known query most similar to an alien one."""

    def __init__(self) -> None:
        self._known: dict[str, QueryAttributes] = {}

    def register(self, query_id: str, attributes: QueryAttributes) -> None:
        """Add (or update) a known query's attributes."""
        self._known[query_id] = attributes

    def register_sql(self, query_id: str, sql: str, n_map_tasks: int) -> None:
        """Parse and register in one step."""
        self.register(query_id, QueryAttributes.from_sql(sql, n_map_tasks))

    @property
    def known_query_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._known))

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._known

    def closest(self, attributes: QueryAttributes) -> SimilarityMatch:
        """The known query with the highest normalised cosine similarity."""
        if not self._known:
            raise RuntimeError("no known queries registered")
        scale = np.max(
            np.stack([known.as_array() for known in self._known.values()]),
            axis=0,
        )
        scale[scale == 0] = 1.0

        candidate = attributes.as_array() / scale
        candidate_norm = np.linalg.norm(candidate)
        scores: dict[str, float] = {}
        for query_id, known in self._known.items():
            reference = known.as_array() / scale
            denominator = candidate_norm * np.linalg.norm(reference)
            if denominator == 0:
                scores[query_id] = 0.0
            else:
                scores[query_id] = float(candidate @ reference / denominator)
        best = max(scores, key=lambda query_id: scores[query_id])
        return SimilarityMatch(
            query_id=best, similarity=scores[best], scores=scores
        )

    def closest_for_sql(self, sql: str, n_map_tasks: int) -> SimilarityMatch:
        """Parse an alien query and find its closest known neighbour."""
        return self.closest(QueryAttributes.from_sql(sql, n_map_tasks))
