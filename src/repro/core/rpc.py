"""The standalone prediction service (Thrift-RPC substitute).

"We designed and implemented the workload prediction module as a separate
process (server) using Thrift RPC.  Thus, other SEDA systems can get
benefits from Smartpick, i.e., workload prediction and the cost-performance
tradeoff feature." (Section 5)

Thrift is unavailable offline, so the service speaks length-prefixed JSON
over TCP -- same architectural property, plain-library implementation:

- :class:`PredictionServer` wraps a trained
  :class:`~repro.core.predictor.WorkloadPredictor` and serves
  ``determine`` / ``predict_duration`` / ``model_info`` / ``tenant_info``
  / ``ping``.
- :class:`PredictionClient` is the matching blocking client.

The service is tenant-aware: callers may tag ``determine`` and
``predict_duration`` with a ``tenant`` name, which is validated against
an optional :class:`~repro.cloud.pool.TenantRegistry` (strict registries
reject unknown names) and metered per tenant so prediction-service usage
can be charged back alongside pool usage; ``tenant_info`` exposes the
registered specs and the per-tenant request counts.

Frames are ``4-byte big-endian length || UTF-8 JSON``.  Requests look like
``{"method": "determine", "params": {...}}``; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": "..."}``.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import socket
import socketserver
import struct
import threading
from typing import Any

from repro.cloud.pool import DEFAULT_TENANT, TenantRegistry
from repro.core.predictor import (
    ConfigDecision,
    PredictionRequest,
    WorkloadPredictor,
)

__all__ = ["PredictionServer", "PredictionClient", "RpcError"]

_LENGTH = struct.Struct(">I")
_MAX_FRAME = 16 * 1024 * 1024


class RpcError(RuntimeError):
    """A remote call failed on the server side."""


def _send_frame(sock: socket.socket, payload: dict) -> None:
    body = json.dumps(payload).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> dict | None:
    header = sock.recv(_LENGTH.size)
    if not header:
        return None
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_FRAME:
        raise ConnectionError(f"frame of {length} bytes exceeds the limit")
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


def _decision_to_dict(decision: ConfigDecision) -> dict:
    # The decision carries its Estimated Time list as a DecisionGrid
    # (arrays); the wire format keeps the list-of-entries shape, so this
    # is the one place the serving path materialises entry objects.
    payload = {
        field.name: getattr(decision, field.name)
        for field in dataclasses.fields(decision)
        if field.name != "grid"
    }
    payload["et_list"] = [dataclasses.asdict(e) for e in decision.et_list]
    payload["best_entry"] = dataclasses.asdict(decision.best_entry)
    payload["chosen_entry"] = dataclasses.asdict(decision.chosen_entry)
    return payload


class _Handler(socketserver.BaseRequestHandler):
    """One connection; serves any number of sequential calls."""

    def handle(self) -> None:
        server: PredictionServer = self.server.prediction_server  # type: ignore[attr-defined]
        while True:
            try:
                request = _recv_frame(self.request)
            except (ConnectionError, json.JSONDecodeError):
                return
            if request is None:
                return
            try:
                result = server.dispatch(
                    request.get("method", ""), request.get("params", {}) or {}
                )
                response = {"ok": True, "result": result}
            except Exception as exc:  # surface the failure to the caller
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                _send_frame(self.request, response)
            except OSError:
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class PredictionServer:
    """Serves a :class:`WorkloadPredictor` to external SEDA systems.

    ``tenants`` optionally attaches a registry: prediction calls tagged
    with a tenant are validated against it (strict registries reject
    unknown names) and counted per tenant for chargeback.
    """

    def __init__(self, predictor: WorkloadPredictor, host: str = "127.0.0.1",
                 port: int = 0,
                 tenants: TenantRegistry | None = None) -> None:
        self.predictor = predictor
        self.tenants = tenants
        self._tenant_requests: collections.Counter[str] = collections.Counter()
        self._tenant_lock = threading.Lock()
        self._tcp = _ThreadingServer((host, port), _Handler)
        self._tcp.prediction_server = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Actually bound ``(host, port)``."""
        return self._tcp.server_address  # type: ignore[return-value]

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("the server is already running")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="prediction-server", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._tcp.shutdown()
        self._tcp.server_close()
        self._thread.join(timeout=5)
        self._thread = None

    def __enter__(self) -> "PredictionServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Method dispatch
    # ------------------------------------------------------------------

    def _meter_tenant(self, params: dict[str, Any]) -> str:
        """Validate and count the calling tenant; returns its name."""
        tenant = params.get("tenant")
        if tenant is None:
            tenant = DEFAULT_TENANT
        if not isinstance(tenant, str) or not tenant:
            # An explicit empty name is a caller bug (e.g. an unset
            # config value), not a request to bill the default tenant.
            raise ValueError("tenant must be a non-empty string")
        if (
            self.tenants is not None
            and self.tenants.strict
            and tenant not in self.tenants
        ):
            raise KeyError(f"unknown tenant {tenant!r}")
        with self._tenant_lock:
            self._tenant_requests[tenant] += 1
        return tenant

    @property
    def tenant_requests(self) -> dict[str, int]:
        """Prediction calls served per tenant (for usage chargeback)."""
        with self._tenant_lock:
            return dict(self._tenant_requests)

    def dispatch(self, method: str, params: dict[str, Any]) -> Any:
        if method == "ping":
            return "pong"
        if method == "model_info":
            return {
                "trained": self.predictor.is_trained,
                "model_version": self.predictor.model_version,
                "training_samples": self.predictor.training_set_size,
                "known_queries": sorted(self.predictor.known_queries),
                "relay": self.predictor.relay,
                "provider": self.predictor.provider.name,
            }
        if method == "tenant_info":
            registered = {}
            if self.tenants is not None:
                registered = {
                    spec.name: {
                        "weight": spec.weight,
                        "max_leased_vms": spec.max_leased_vms,
                        "max_leased_sls": spec.max_leased_sls,
                        "max_in_flight": spec.max_in_flight,
                        "slo_latency_s": spec.slo_latency_s,
                        "tier": spec.tier,
                    }
                    for spec in self.tenants
                }
            return {
                # `is not None`: an empty strict registry is falsy but
                # its strictness is very much in force.
                "strict": (
                    self.tenants.strict if self.tenants is not None else False
                ),
                "tenants": registered,
                "requests": self.tenant_requests,
            }
        if method == "predict_duration":
            self._meter_tenant(params)
            request = PredictionRequest(**params["request"])
            features = request.feature_vector(
                int(params["n_vm"]), int(params["n_sl"])
            )
            return self.predictor.predict_duration(features)
        if method == "determine":
            tenant = self._meter_tenant(params)
            request = PredictionRequest(**params["request"])
            decision = self.predictor.determine(
                request,
                knob=float(params.get("knob", 0.0)),
                mode=params.get("mode", "hybrid"),
            )
            payload = _decision_to_dict(decision)
            payload["tenant"] = tenant
            return payload
        raise ValueError(f"unknown RPC method {method!r}")


class PredictionClient:
    """Blocking client for :class:`PredictionServer`."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def call(self, method: str, **params: Any) -> Any:
        _send_frame(self._sock, {"method": method, "params": params})
        response = _recv_frame(self._sock)
        if response is None:
            raise ConnectionError("the server closed the connection")
        if not response.get("ok"):
            raise RpcError(response.get("error", "unknown remote failure"))
        return response["result"]

    # Convenience wrappers -------------------------------------------------

    def ping(self) -> str:
        return self.call("ping")

    def model_info(self) -> dict:
        return self.call("model_info")

    def tenant_info(self) -> dict:
        return self.call("tenant_info")

    def predict_duration(
        self,
        request: PredictionRequest,
        n_vm: int,
        n_sl: int,
        tenant: str | None = None,
    ) -> float:
        params: dict[str, Any] = dict(
            request=dataclasses.asdict(request), n_vm=n_vm, n_sl=n_sl
        )
        if tenant is not None:
            params["tenant"] = tenant
        return self.call("predict_duration", **params)

    def determine(
        self,
        request: PredictionRequest,
        knob: float = 0.0,
        mode: str = "hybrid",
        tenant: str | None = None,
    ) -> dict:
        params: dict[str, Any] = dict(
            request=dataclasses.asdict(request), knob=knob, mode=mode
        )
        if tenant is not None:
            params["tenant"] = tenant
        return self.call("determine", **params)
