"""Command-line interface.

Section 5: "To kick-start Smartpick, the first model training is invoked
through a CLI script, tailor-made to initialize and create models from
scratch."  This module is that script, plus a submit command and a
prediction-service launcher:

.. code-block:: bash

    # initial training on the representational workloads
    python -m repro.cli bootstrap --provider AWS \
        --queries tpcds-q11,tpcds-q49,tpcds-q68,tpcds-q74,tpcds-q82 \
        --configs 20 --history history.json

    # size + execute one query against a previously saved history
    python -m repro.cli submit tpcds-q11 --history history.json --knob 0.2

    # list the available workloads
    python -m repro.cli workloads
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import Smartpick, SmartpickProperties
from repro.workloads import all_query_ids, get_query
from repro.workloads.tpcds import TPCDS_TRAINING_QUERY_IDS

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Smartpick reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bootstrap = sub.add_parser(
        "bootstrap", help="initial model training (Section 5 CLI step)"
    )
    bootstrap.add_argument(
        "--provider", default="AWS", choices=("AWS", "GCP", "aws", "gcp")
    )
    bootstrap.add_argument(
        "--queries",
        default=",".join(TPCDS_TRAINING_QUERY_IDS),
        help="comma-separated query ids (default: the paper's training set)",
    )
    bootstrap.add_argument("--configs", type=int, default=20,
                           help="sample configurations per query")
    bootstrap.add_argument("--no-relay", action="store_true",
                           help="train the no-relay Smartpick variant")
    bootstrap.add_argument("--seed", type=int, default=7)
    bootstrap.add_argument("--history", default=None,
                           help="write the run history to this JSON file")

    submit = sub.add_parser("submit", help="size and execute one query")
    submit.add_argument("query_id")
    submit.add_argument("--provider", default="AWS",
                        choices=("AWS", "GCP", "aws", "gcp"))
    submit.add_argument("--knob", type=float, default=0.0,
                        help="cost-performance tolerance (epsilon)")
    submit.add_argument("--mode", default="hybrid",
                        choices=("hybrid", "vm-only", "sl-only"))
    submit.add_argument("--input-gb", type=float, default=100.0)
    submit.add_argument("--configs", type=int, default=20,
                        help="bootstrap configurations if training is needed")
    submit.add_argument("--seed", type=int, default=7)

    sub.add_parser("workloads", help="list the available benchmark queries")
    return parser


def _run_bootstrap(args: argparse.Namespace) -> int:
    query_ids = [q.strip() for q in args.queries.split(",") if q.strip()]
    if not query_ids:
        print("no queries given", file=sys.stderr)
        return 2
    properties = SmartpickProperties(
        provider=args.provider.upper(), relay=not args.no_relay
    )
    system = Smartpick(properties=properties, rng=args.seed)
    report = system.bootstrap(
        [get_query(q) for q in query_ids], n_configs_per_query=args.configs
    )
    print(f"trained model v{report.model_version} on {report.n_runs} runs "
          f"({report.n_training_samples} burst-augmented samples)")
    if report.oob_rmse is not None:
        print(f"out-of-bag RMSE: {report.oob_rmse:.2f} s")
    if args.history:
        system.history.dump_json(args.history)
        print(f"history written to {args.history}")
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    properties = SmartpickProperties(
        provider=args.provider.upper(), knob=args.knob
    )
    system = Smartpick(properties=properties, rng=args.seed)
    # A fresh process needs a model first; bootstrap on the paper's
    # training set (a saved-model store would go here in a deployment).
    print("bootstrapping the prediction model...")
    system.bootstrap(
        [get_query(q) for q in TPCDS_TRAINING_QUERY_IDS],
        n_configs_per_query=args.configs,
    )
    outcome = system.submit(
        get_query(args.query_id, input_gb=args.input_gb),
        knob=args.knob,
        mode=args.mode,
    )
    print(outcome.summary())
    print(f"configuration: {outcome.decision.n_vm} VM + "
          f"{outcome.decision.n_sl} SL ({outcome.result.policy})")
    return 0


def _run_workloads() -> int:
    for query_id in all_query_ids():
        query = get_query(query_id)
        print(f"{query_id:12s} {query.suite:10s} {query.n_stages:3d} stages "
              f"{query.total_tasks:5d} tasks")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "bootstrap":
        return _run_bootstrap(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "workloads":
        return _run_workloads()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
