"""ASCII tables and series for the benchmark harness.

Every bench prints the same rows/series its corresponding paper table or
figure shows, in plain text, so results are reviewable straight from the
pytest output (and from ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    # Control characters would break the row layout.
    text = str(value)
    return "".join(ch if ch.isprintable() else " " for ch in text)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    footer: Sequence[object] | None = None,
) -> str:
    """A fixed-width ASCII table.

    ``footer`` renders one extra row below a second separator -- the
    conventional place for totals (e.g. a chargeback table whose tenant
    bills must sum to the pool bill).

    >>> print(format_table(("a", "b"), [(1, 2.5)]))
    a | b
    --+-----
    1 | 2.50
    >>> print(format_table(("a", "b"), [(1, 2.5)], footer=(1, 2.5)))
    a | b
    --+-----
    1 | 2.50
    --+-----
    1 | 2.50
    """
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    rendered_footer = (
        [_render_cell(cell) for cell in footer] if footer is not None else None
    )
    measured = rendered + (
        [rendered_footer] if rendered_footer is not None else []
    )
    for row in measured:
        if len(row) != len(headers):
            raise ValueError("row width does not match the header count")
    widths = [
        max(len(header), *(len(row[i]) for row in measured)) if measured
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    separator = "-+-".join("-" * width for width in widths)
    lines.append(separator)
    for row in rendered:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if rendered_footer is not None:
        lines.append(separator)
        lines.append(
            " | ".join(
                cell.rjust(widths[i]) for i, cell in enumerate(rendered_footer)
            )
        )
    return "\n".join(line.rstrip() for line in lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """A figure-style data listing: one x column plus named series columns.

    >>> print(format_series("eps", ("0.0", "0.2"), {"cost": (5.0, 4.2)}))
    eps | cost
    ----+-----
    0.0 | 5.00
    0.2 | 4.20
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length does not match x_values")
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
