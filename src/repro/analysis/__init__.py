"""Analysis utilities shared by the benchmark harness.

- :mod:`repro.analysis.pcr` -- the performance-cost ratio of Eq. 3.
- :mod:`repro.analysis.stats` -- means and 90 % confidence intervals
  (the paper plots averages of 10 runs with 90 % CIs).
- :mod:`repro.analysis.reporting` -- ASCII tables and series so every
  bench prints the same rows/series its paper figure shows.
- :mod:`repro.analysis.sketches` -- mergeable streaming accumulators
  (reservoir percentiles, exactly-rounded sums) for scale replay.
"""

from repro.analysis.pcr import performance_cost_ratio, scaled_pcr
from repro.analysis.reporting import format_series, format_table
from repro.analysis.sketches import ExactSum, ReservoirQuantiles
from repro.analysis.stats import confidence_interval, mean_and_ci

__all__ = [
    "ExactSum",
    "ReservoirQuantiles",
    "confidence_interval",
    "format_series",
    "format_table",
    "mean_and_ci",
    "performance_cost_ratio",
    "scaled_pcr",
]
