"""Summary statistics for experiment reporting.

"All experimental results are an average of 10 runs, plotted with 90 %
confidence intervals." (Section 6.1)  These helpers compute exactly that.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["MeanCI", "confidence_interval", "mean_and_ci"]


@dataclasses.dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.2f} +- {self.half_width:.2f}"


def confidence_interval(
    samples: np.ndarray, confidence: float = 0.90
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``."""
    summary = mean_and_ci(samples, confidence)
    return summary.low, summary.high


def mean_and_ci(samples: np.ndarray, confidence: float = 0.90) -> MeanCI:
    """Mean and t-based CI half-width (half-width 0 for n < 2)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    values = np.asarray(samples, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("need at least one sample")
    mean = float(values.mean())
    if values.size < 2:
        return MeanCI(mean=mean, half_width=0.0, confidence=confidence, n=1)
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, values.size - 1))
    return MeanCI(
        mean=mean,
        half_width=t_value * sem,
        confidence=confidence,
        n=int(values.size),
    )
