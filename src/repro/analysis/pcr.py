"""The performance-cost ratio (Eq. 3 of the paper).

``PCr = (1 / Time) / (1 + cost)`` where *Time* is the inference latency of
a resource-determination scheme and *cost* the compute charges it incurred
to make the decision.  Figure 2 plots PCr "scaled to a multiple of 100"
for RF-only (OptimusCloud), BO-only (CherryPick) and RF + BO (Smartpick).
"""

from __future__ import annotations

__all__ = ["performance_cost_ratio", "scaled_pcr"]


def performance_cost_ratio(time_seconds: float, cost_dollars: float) -> float:
    """Eq. 3: ``(1 / Time) / (1 + cost)``."""
    if time_seconds <= 0:
        raise ValueError("time_seconds must be positive")
    if cost_dollars < 0:
        raise ValueError("cost_dollars must be non-negative")
    return (1.0 / time_seconds) / (1.0 + cost_dollars)


def scaled_pcr(
    time_seconds: float, cost_dollars: float, scale: float = 100.0
) -> float:
    """PCr scaled the way Figure 2 plots it (a multiple of 100)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return performance_cost_ratio(time_seconds, cost_dollars) * scale
