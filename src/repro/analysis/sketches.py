"""Mergeable streaming accumulators for million-arrival replay reports.

At 10^6 arrivals a :class:`~repro.core.serving.ServingReport` can no
longer afford one Python object per served query, so the replay loop
folds every observation into two small, mergeable accumulators:

- :class:`ReservoirQuantiles` -- a uniform reservoir sample (Li's
  "Algorithm L" skip sampling) with exact min/max tracking.  While the
  stream fits in the reservoir the sample *is* the stream, so every
  percentile is bit-for-bit ``np.percentile`` of the full data; past
  capacity the estimate's rank error concentrates around
  ``sqrt(q * (1 - q) / capacity)``.
- :class:`ExactSum` -- Shewchuk partials, the ``math.fsum`` algorithm
  in online form.  The rounded value is independent of observation
  order, which makes merged reports agree with single-pass ones.

Both are deterministic (the reservoir owns a seeded generator) and
support ``merge`` so per-segment replay reports can be combined.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ExactSum", "ReservoirQuantiles"]


class ExactSum:
    """Exactly-rounded running sum of floats (Shewchuk partials).

    Equivalent to ``math.fsum`` over everything added so far, but
    incremental and mergeable: the rounded value never depends on the
    order observations arrived in, so a merged sum equals a single-pass
    sum over the concatenated stream.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: list[float] = []

    def add(self, x: float) -> None:
        x = float(x)
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def add_many(self, values) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "ExactSum") -> None:
        """Fold ``other`` into this sum (exactness preserved)."""
        for partial in other._partials:
            self.add(partial)

    @property
    def value(self) -> float:
        return math.fsum(self._partials)


class ReservoirQuantiles:
    """Uniform reservoir sample with exact extremes, for percentiles.

    ``observe`` runs Algorithm L: once the reservoir is full the sketch
    draws geometric skip lengths, so the per-item cost of a long stream
    is O(capacity * log(n / capacity)) random draws overall rather than
    one per item.  ``percentile`` is exact (``np.percentile`` of the
    full multiset) while ``count <= capacity``, and exact at q=0/q=100
    always; in between, estimates carry the usual reservoir rank error
    of about ``sqrt(q * (1 - q) / capacity)``.

    ``merge`` subsamples the two reservoirs proportionally to their
    stream counts, which keeps the merged sample approximately uniform
    over the concatenated stream -- good enough for rank-error-bounded
    percentiles, and deterministic for a given pair of sketches.
    """

    __slots__ = ("capacity", "_sample", "_count", "_min", "_max",
                 "_rng", "_w", "_skip")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = int(capacity)
        self._sample: list[float] = []
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._rng = np.random.default_rng(seed)
        self._w = 1.0
        self._skip = -1  # arrivals to skip before the next replacement

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def observe(self, x: float) -> None:
        x = float(x)
        self._count += 1
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        sample = self._sample
        if len(sample) < self.capacity:
            sample.append(x)
            return
        if self._skip < 0:
            self._next_skip()
        if self._skip == 0:
            sample[int(self._rng.integers(self.capacity))] = x
            self._next_skip()
        else:
            self._skip -= 1

    def observe_many(self, values) -> None:
        """Fold a batch of observations, bitwise-equal to a scalar loop.

        While the reservoir is filling the batch is a single ``extend``;
        past capacity, Algorithm L's geometric skips are consumed in one
        jump per gap instead of one decrement per arrival.  The rng draw
        sequence (``integers`` at each replacement, then the two
        ``random()`` draws of ``_next_skip``) is identical to calling
        :meth:`observe` per element, so sketch state matches exactly.
        """
        arr = np.asarray(values, dtype=np.float64)
        n = int(arr.size)
        if n == 0:
            return
        self._count += n
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi
        sample = self._sample
        i = 0
        room = self.capacity - len(sample)
        if room > 0:
            take = room if room < n else n
            sample.extend(arr[:take].tolist())
            i = take
        while i < n:
            if self._skip < 0:
                self._next_skip()
            if self._skip == 0:
                sample[int(self._rng.integers(self.capacity))] = float(arr[i])
                self._next_skip()
                i += 1
            else:
                jump = self._skip if self._skip < n - i else n - i
                self._skip -= jump
                i += jump

    def _next_skip(self) -> None:
        # Algorithm L: shrink the acceptance weight geometrically and
        # jump straight to the next accepted arrival.
        rng = self._rng
        self._w *= math.exp(math.log(rng.random()) / self.capacity)
        self._skip = int(math.log(rng.random()) / math.log1p(-self._w))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Observations seen (not the sample size)."""
        return self._count

    @property
    def is_exact(self) -> bool:
        """True while the sample still holds the entire stream."""
        return self._count <= self.capacity

    @property
    def minimum(self) -> float:
        if not self._count:
            raise ValueError("empty sketch has no minimum")
        return self._min

    @property
    def maximum(self) -> float:
        if not self._count:
            raise ValueError("empty sketch has no maximum")
        return self._max

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``) of the stream.

        Exact while the sample still holds the whole stream; the
        boundaries ``q=0`` and ``q=100`` are exact *always* (they read
        the tracked extremes, not the sample), and interior estimates
        are clamped into ``[minimum, maximum]``.  An out-of-range ``q``
        is an error, never a silent clamp to an extreme.
        """
        if not self._count:
            raise ValueError("empty sketch has no percentiles")
        q = float(q)
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be within [0, 100]")
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        estimate = float(np.percentile(np.asarray(self._sample), q))
        return min(max(estimate, self._min), self._max)

    def mean_of_sample(self) -> float:
        if not self._count:
            raise ValueError("empty sketch has no mean")
        return float(np.mean(np.asarray(self._sample)))

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge(self, other: "ReservoirQuantiles") -> None:
        """Fold ``other``'s sample into this sketch in place."""
        if other._count == 0:
            return
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        total = self._count + other._count
        if self.is_exact and other.is_exact and (
            len(self._sample) + len(other._sample) <= self.capacity
        ):
            self._sample.extend(other._sample)
            self._count = total
            return
        # Weighted subsample: fill the reservoir taking from each side
        # proportionally to how much stream it represents, positions
        # drawn uniformly without replacement (each side's sample is
        # already uniform over its own stream).  Vectorised: merging is
        # on the report-combination path, where dozens of sketches fold
        # per report pair.
        rng = self._rng
        mine = np.asarray(self._sample, dtype=np.float64)
        theirs = np.asarray(other._sample, dtype=np.float64)
        take_mine = int(round(self.capacity * (self._count / total)))
        take_mine = max(take_mine, self.capacity - len(theirs))
        take_mine = min(take_mine, len(mine), self.capacity)
        take_theirs = min(self.capacity - take_mine, len(theirs))
        parts = []
        for side, take in ((mine, take_mine), (theirs, take_theirs)):
            if take >= len(side):
                parts.append(side)
            else:
                parts.append(
                    side[rng.choice(len(side), size=take, replace=False)]
                )
        self._sample = np.concatenate(parts).tolist()
        self._count = total
        self._w = 1.0
        self._skip = -1
